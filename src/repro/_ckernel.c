/* Compiled simulator kernel: C port of repro.sim.events + repro.sim.kernel
 * plus the quiet-path message send from repro.net.network and the
 * kernel-dispatch microbenchmark workload.
 *
 * Contract: byte-identical observable behaviour to the pure-python kernel.
 * The heap stores (time, seq, event) with lazy cancellation exactly like
 * the python EventQueue, so the pop order — including when cancelled
 * entries surface and are discarded — is the same total order, and every
 * digest (ResultSet, obs recorder, history) matches the interpreted run.
 *
 * Built optionally by setup.py; repro.engine falls back to the python
 * kernel when this module is absent.  See docs/performance.md.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define CKERNEL_ABI 1

/* Interned / cached objects (module-lifetime). */
static PyObject *str_enabled, *str__tracer, *str_pid, *str_inc, *str_max_gauge;
static PyObject *str_sim_events, *str_sim_queue_depth, *str_sim_now_ms;
static PyObject *str__observe_dispatch, *str_getrandbits, *str_kwarg_pid;
static PyObject *str_messages_sent, *str_sender, *str_recipient, *str_sent_at;
static PyObject *str_datacenter, *str_loss_probability;
static PyObject *empty_tuple;
static PyObject *int_four;
static PyObject *int_one;

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

typedef struct CQueue CQueue;

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *fn;
    PyObject *args;      /* tuple */
    char cancelled;
    char daemon;
    CQueue *queue;       /* owning queue while pending; NULL after pop */
} CEvent;

typedef struct {
    double time;
    long long seq;
    CEvent *ev;          /* owned reference */
} HeapEntry;

struct CQueue {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t size;
    Py_ssize_t cap;
    long long counter;
    Py_ssize_t live;        /* pending non-cancelled events */
    Py_ssize_t foreground;  /* pending non-daemon, non-cancelled events */
};

static PyTypeObject CEvent_Type;
static PyTypeObject CQueue_Type;

static int
cevent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    Py_VISIT(self->queue);
    return 0;
}

static int
cevent_clear(CEvent *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    Py_CLEAR(self->queue);
    return 0;
}

static void
cevent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    cevent_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Eager cancellation: release the queue accounting *now*; the heap entry
 * lingers until it tops the heap and is discarded (identical to python
 * Event.cancel).  Cancel-after-fire is a no-op because pop detaches the
 * queue pointer. */
static void
cevent_cancel_internal(CEvent *self)
{
    if (self->cancelled)
        return;
    self->cancelled = 1;
    if (self->queue != NULL) {
        self->queue->live -= 1;
        if (!self->daemon)
            self->queue->foreground -= 1;
    }
}

static PyObject *
cevent_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    cevent_cancel_internal(self);
    Py_RETURN_NONE;
}

static PyObject *
cevent_repr(CEvent *self)
{
    PyObject *name = NULL, *out;
    char *tbuf;
    if (self->fn != NULL) {
        name = PyObject_GetAttrString(self->fn, "__qualname__");
        if (name == NULL) {
            PyErr_Clear();
            name = PyObject_Repr(self->fn);
            if (name == NULL)
                return NULL;
        }
    }
    else {
        name = PyUnicode_FromString("<freed>");
        if (name == NULL)
            return NULL;
    }
    tbuf = PyOS_double_to_string(self->time, 'f', 3, 0, NULL);
    if (tbuf == NULL) {
        Py_DECREF(name);
        return NULL;
    }
    out = PyUnicode_FromFormat("<Event t=%s %U%s>", tbuf, name,
                               self->cancelled ? " cancelled" : "");
    PyMem_Free(tbuf);
    Py_DECREF(name);
    return out;
}

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Prevent the event from firing (eager foreground release)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef cevent_members[] = {
    {"time", T_DOUBLE, offsetof(CEvent, time), READONLY, NULL},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), READONLY, NULL},
    {"fn", T_OBJECT_EX, offsetof(CEvent, fn), READONLY, NULL},
    {"args", T_OBJECT_EX, offsetof(CEvent, args), READONLY, NULL},
    {"cancelled", T_BOOL, offsetof(CEvent, cancelled), READONLY, NULL},
    {"daemon", T_BOOL, offsetof(CEvent, daemon), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback (compiled kernel).",
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_methods = cevent_methods,
    .tp_members = cevent_members,
};

/* ------------------------------------------------------------------ */
/* EventQueue: binary heap of HeapEntry ordered by (time, seq)          */
/* ------------------------------------------------------------------ */

static inline int
entry_lt(const HeapEntry *a, const HeapEntry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    return a->seq < b->seq;
}

static int
cq_grow(CQueue *q)
{
    Py_ssize_t newcap = q->cap ? q->cap * 2 : 64;
    HeapEntry *h = PyMem_Realloc(q->heap, newcap * sizeof(HeapEntry));
    if (h == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->heap = h;
    q->cap = newcap;
    return 0;
}

/* heapq._siftdown: move heap[pos] toward the root until ordered. */
static void
cq_siftdown(HeapEntry *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    HeapEntry newitem = heap[pos];
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        if (!entry_lt(&newitem, &heap[parentpos]))
            break;
        heap[pos] = heap[parentpos];
        pos = parentpos;
    }
    heap[pos] = newitem;
}

/* heapq._siftup: move the (replaced) root down to a leaf, then up. */
static void
cq_siftup(HeapEntry *heap, Py_ssize_t pos, Py_ssize_t endpos)
{
    Py_ssize_t startpos = pos;
    HeapEntry newitem = heap[pos];
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos && !entry_lt(&heap[childpos], &heap[rightpos]))
            childpos = rightpos;
        heap[pos] = heap[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    heap[pos] = newitem;
    cq_siftdown(heap, startpos, pos);
}

/* Push and return a NEW reference to the created event. */
static CEvent *
cq_push_internal(CQueue *q, double time, PyObject *fn, PyObject *args, int daemon)
{
    CEvent *ev;
    if (q->size >= q->cap && cq_grow(q) < 0)
        return NULL;
    ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->time = time;
    ev->seq = q->counter++;
    Py_INCREF(fn);
    ev->fn = fn;
    Py_INCREF(args);
    ev->args = args;
    ev->cancelled = 0;
    ev->daemon = (char)daemon;
    Py_INCREF(q);
    ev->queue = q;
    PyObject_GC_Track(ev);

    q->heap[q->size].time = time;
    q->heap[q->size].seq = ev->seq;
    Py_INCREF(ev);
    q->heap[q->size].ev = ev;
    q->size += 1;
    cq_siftdown(q->heap, 0, q->size - 1);
    q->live += 1;
    if (!daemon)
        q->foreground += 1;
    return ev;
}

/* Pop the heap top; caller owns the returned entry's event reference.
 * Caller must check q->size > 0 first. */
static HeapEntry
cq_pop_top(CQueue *q)
{
    HeapEntry top = q->heap[0];
    q->size -= 1;
    if (q->size > 0) {
        q->heap[0] = q->heap[q->size];
        cq_siftup(q->heap, 0, q->size);
    }
    return top;
}

static int
cqueue_traverse(CQueue *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < self->size; i++)
        Py_VISIT(self->heap[i].ev);
    return 0;
}

static int
cqueue_clear(CQueue *self)
{
    Py_ssize_t i, n = self->size;
    self->size = 0;
    for (i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].ev);
    return 0;
}

static void
cqueue_dealloc(CQueue *self)
{
    PyObject_GC_UnTrack(self);
    cqueue_clear(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
cqueue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CQueue *self = (CQueue *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = self->cap = 0;
    self->counter = 0;
    self->live = self->foreground = 0;
    return (PyObject *)self;
}

static Py_ssize_t
cqueue_len(CQueue *self)
{
    return self->live;
}

static PyObject *
cqueue_push(CQueue *self, PyObject *const *args, Py_ssize_t nargs,
            PyObject *kwnames)
{
    double time;
    PyObject *fn, *argtuple = empty_tuple;
    int daemon = 0;
    /* push(time, fn, args=(), daemon=False) */
    Py_ssize_t npos = nargs;
    if (npos < 2 || npos > 4) {
        PyErr_SetString(PyExc_TypeError, "push(time, fn, args=(), daemon=False)");
        return NULL;
    }
    time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    fn = args[1];
    if (npos >= 3)
        argtuple = args[2];
    if (npos == 4)
        daemon = PyObject_IsTrue(args[3]);
    if (kwnames != NULL) {
        Py_ssize_t i, nkw = PyTuple_GET_SIZE(kwnames);
        for (i = 0; i < nkw; i++) {
            PyObject *key = PyTuple_GET_ITEM(kwnames, i);
            PyObject *val = args[npos + i];
            if (PyUnicode_CompareWithASCIIString(key, "daemon") == 0)
                daemon = PyObject_IsTrue(val);
            else if (PyUnicode_CompareWithASCIIString(key, "args") == 0)
                argtuple = val;
            else {
                PyErr_Format(PyExc_TypeError, "unexpected keyword %R", key);
                return NULL;
            }
        }
    }
    if (daemon < 0)
        return NULL;
    if (!PyTuple_Check(argtuple)) {
        PyErr_SetString(PyExc_TypeError, "args must be a tuple");
        return NULL;
    }
    return (PyObject *)cq_push_internal(self, time, fn, argtuple, daemon);
}

/* Pop the earliest non-cancelled event, or None (python EventQueue.pop). */
static PyObject *
cqueue_pop(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    while (self->size > 0) {
        HeapEntry top = cq_pop_top(self);
        CEvent *ev = top.ev;
        if (ev->cancelled) {
            Py_DECREF(ev);
            continue;
        }
        Py_CLEAR(ev->queue);  /* a late cancel() must not re-release */
        self->live -= 1;
        if (!ev->daemon)
            self->foreground -= 1;
        return (PyObject *)ev;
    }
    Py_RETURN_NONE;
}

static PyObject *
cqueue_peek_time(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    while (self->size > 0 && self->heap[0].ev->cancelled) {
        HeapEntry top = cq_pop_top(self);
        Py_DECREF(top.ev);
    }
    if (self->size > 0)
        return PyFloat_FromDouble(self->heap[0].time);
    Py_RETURN_NONE;
}

static PyObject *
cqueue_get_foreground(CQueue *self, void *closure)
{
    return PyLong_FromSsize_t(self->foreground);
}

static PyObject *
cqueue_get_heap_len(CQueue *self, void *closure)
{
    /* Raw heap entries including lingering cancelled ones — what the
     * python loop samples for the sim.queue_depth gauge. */
    return PyLong_FromSsize_t(self->size);
}

static PyGetSetDef cqueue_getset[] = {
    {"foreground_count", (getter)cqueue_get_foreground, NULL,
     "Pending non-daemon events (exact: cancel releases eagerly).", NULL},
    {"heap_len", (getter)cqueue_get_heap_len, NULL,
     "Raw heap length including lingering cancelled entries.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef cqueue_methods[] = {
    {"push", (PyCFunction)(void (*)(void))cqueue_push,
     METH_FASTCALL | METH_KEYWORDS, "push(time, fn, args=(), daemon=False)"},
    {"pop", (PyCFunction)cqueue_pop, METH_NOARGS,
     "Pop the earliest non-cancelled event, or None."},
    {"peek_time", (PyCFunction)cqueue_peek_time, METH_NOARGS,
     "Fire time of the earliest pending event, or None."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods cqueue_as_sequence = {
    .sq_length = (lenfunc)cqueue_len,
};

static PyTypeObject CQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.EventQueue",
    .tp_basicsize = sizeof(CQueue),
    .tp_dealloc = (destructor)cqueue_dealloc,
    .tp_as_sequence = &cqueue_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Time-ordered event queue (compiled kernel).",
    .tp_traverse = (traverseproc)cqueue_traverse,
    .tp_clear = (inquiry)cqueue_clear,
    .tp_methods = cqueue_methods,
    .tp_getset = cqueue_getset,
    .tp_new = cqueue_new,
};

/* ------------------------------------------------------------------ */
/* SimulatorBase                                                       */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double now;
    PyObject *seed;   /* arbitrary int: sim.rng.derive_seed is full 64-bit */
    long long events_processed;
    char running;
    char stopped;
    PyObject *rng;
    PyObject *tracer;
    PyObject *metrics;
    CQueue *queue;
} CSim;

static PyTypeObject CSim_Type;

static int
csim_traverse(CSim *self, visitproc visit, void *arg)
{
    Py_VISIT(self->seed);
    Py_VISIT(self->rng);
    Py_VISIT(self->tracer);
    Py_VISIT(self->metrics);
    Py_VISIT(self->queue);
    return 0;
}

static int
csim_clear_gc(CSim *self)
{
    Py_CLEAR(self->seed);
    Py_CLEAR(self->rng);
    Py_CLEAR(self->tracer);
    Py_CLEAR(self->metrics);
    Py_CLEAR(self->queue);
    return 0;
}

static void
csim_dealloc(CSim *self)
{
    PyObject_GC_UnTrack(self);
    csim_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
csim_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CSim *self = (CSim *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->now = 0.0;
    self->events_processed = 0;
    self->running = self->stopped = 0;
    self->seed = NULL;
    self->rng = self->tracer = self->metrics = NULL;
    self->queue = NULL;
    return (PyObject *)self;
}

static int
csim_init(CSim *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"seed", "rng", "tracer", "metrics", NULL};
    PyObject *seed, *rng, *tracer, *metrics;
    CQueue *queue;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOOO", kwlist,
                                     &seed, &rng, &tracer, &metrics))
        return -1;
    queue = (CQueue *)cqueue_new(&CQueue_Type, NULL, NULL);
    if (queue == NULL)
        return -1;
    self->now = 0.0;
    Py_INCREF(seed);
    Py_XSETREF(self->seed, seed);
    self->events_processed = 0;
    self->running = self->stopped = 0;
    Py_INCREF(rng);
    Py_XSETREF(self->rng, rng);
    Py_INCREF(tracer);
    Py_XSETREF(self->tracer, tracer);
    Py_INCREF(metrics);
    Py_XSETREF(self->metrics, metrics);
    Py_XSETREF(self->queue, queue);
    return 0;
}

static inline int
attr_is_true(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    int r;
    if (v == NULL)
        return -1;
    r = PyObject_IsTrue(v);
    Py_DECREF(v);
    return r;
}

/* schedule/schedule_at/call_soon/schedule_daemon ------------------- */

/* A subclass that skips SimulatorBase.__init__ (or whose __init__
 * failed) has no queue; every entry point checks rather than segfault. */
static int
csim_check_ready(CSim *self)
{
    if (self->queue == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "simulator is not initialized "
                        "(SimulatorBase.__init__ was not called)");
        return -1;
    }
    return 0;
}

static PyObject *
csim_schedule_common(CSim *self, PyObject *const *args, Py_ssize_t nargs,
                     int absolute, int daemon, const char *name)
{
    double when;
    PyObject *fn, *argtuple, *result;
    Py_ssize_t i, extra;
    if (csim_check_ready(self) < 0)
        return NULL;
    if (nargs < 2) {
        PyErr_Format(PyExc_TypeError, "%s(delay, fn, *args)", name);
        return NULL;
    }
    when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (absolute) {
        if (when < self->now) {
            PyObject *now_obj = PyFloat_FromDouble(self->now);
            if (now_obj != NULL) {
                PyErr_Format(PyExc_ValueError,
                             "cannot schedule in the past: %S < %S",
                             args[0], now_obj);
                Py_DECREF(now_obj);
            }
            return NULL;
        }
    }
    else {
        if (when < 0.0)
            return PyErr_Format(PyExc_ValueError, "negative delay %R", args[0]);
        when = self->now + when;
    }
    fn = args[1];
    extra = nargs - 2;
    if (extra == 0) {
        argtuple = empty_tuple;
        Py_INCREF(argtuple);
    }
    else {
        argtuple = PyTuple_New(extra);
        if (argtuple == NULL)
            return NULL;
        for (i = 0; i < extra; i++) {
            Py_INCREF(args[2 + i]);
            PyTuple_SET_ITEM(argtuple, i, args[2 + i]);
        }
    }
    result = (PyObject *)cq_push_internal(self->queue, when, fn, argtuple, daemon);
    Py_DECREF(argtuple);
    return result;
}

static PyObject *
csim_schedule(CSim *self, PyObject *const *args, Py_ssize_t nargs)
{
    return csim_schedule_common(self, args, nargs, 0, 0, "schedule");
}

static PyObject *
csim_schedule_at(CSim *self, PyObject *const *args, Py_ssize_t nargs)
{
    return csim_schedule_common(self, args, nargs, 1, 0, "schedule_at");
}

static PyObject *
csim_schedule_daemon(CSim *self, PyObject *const *args, Py_ssize_t nargs)
{
    return csim_schedule_common(self, args, nargs, 0, 1, "schedule_daemon");
}

static PyObject *
csim_call_soon(CSim *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *fn, *argtuple, *result;
    Py_ssize_t i, extra;
    if (csim_check_ready(self) < 0)
        return NULL;
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError, "call_soon(fn, *args)");
        return NULL;
    }
    fn = args[0];
    extra = nargs - 1;
    if (extra == 0) {
        argtuple = empty_tuple;
        Py_INCREF(argtuple);
    }
    else {
        argtuple = PyTuple_New(extra);
        if (argtuple == NULL)
            return NULL;
        for (i = 0; i < extra; i++) {
            Py_INCREF(args[1 + i]);
            PyTuple_SET_ITEM(argtuple, i, args[1 + i]);
        }
    }
    result = (PyObject *)cq_push_internal(self->queue, self->now, fn, argtuple, 0);
    Py_DECREF(argtuple);
    return result;
}

/* step ------------------------------------------------------------- */

static PyObject *
csim_observe_dispatch(CSim *self, CEvent *ev)
{
    return PyObject_CallMethodOneArg((PyObject *)self, str__observe_dispatch,
                                     (PyObject *)ev);
}

static PyObject *
csim_step(CSim *self, PyObject *Py_UNUSED(ignored))
{
    CQueue *q = self->queue;
    CEvent *ev = NULL;
    PyObject *r;
    int m_on, t_on;
    if (csim_check_ready(self) < 0)
        return NULL;
    while (q->size > 0) {
        HeapEntry top = cq_pop_top(q);
        if (top.ev->cancelled) {
            Py_DECREF(top.ev);
            continue;
        }
        ev = top.ev;
        break;
    }
    if (ev == NULL)
        Py_RETURN_FALSE;
    Py_CLEAR(ev->queue);
    q->live -= 1;
    if (!ev->daemon)
        q->foreground -= 1;
    self->now = ev->time;
    self->events_processed += 1;
    m_on = attr_is_true(self->metrics, str_enabled);
    if (m_on < 0)
        goto error;
    t_on = m_on ? 0 : attr_is_true(self->tracer, str_enabled);
    if (t_on < 0)
        goto error;
    if (m_on || t_on) {
        r = csim_observe_dispatch(self, ev);
        if (r == NULL)
            goto error;
        Py_DECREF(r);
    }
    r = PyObject_Call(ev->fn, ev->args, NULL);
    if (r == NULL)
        goto error;
    Py_DECREF(r);
    Py_DECREF(ev);
    Py_RETURN_TRUE;
error:
    Py_DECREF(ev);
    return NULL;
}

/* run -------------------------------------------------------------- */

/* Flush the batched-metrics locals; preserves any in-flight exception. */
static void
csim_flush_batched(CSim *self, long long dispatched, Py_ssize_t depth_hw)
{
    PyObject *exc_type, *exc_value, *exc_tb, *r, *arg1, *arg2;
    if (dispatched == 0)
        return;
    self->events_processed += dispatched;
    PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
    arg1 = PyLong_FromLongLong(dispatched);
    if (arg1 != NULL) {
        r = PyObject_CallMethodObjArgs(self->metrics, str_inc,
                                       str_sim_events, arg1, NULL);
        Py_XDECREF(r);
        if (r == NULL)
            PyErr_Clear();
        Py_DECREF(arg1);
    }
    else
        PyErr_Clear();
    arg2 = PyFloat_FromDouble((double)depth_hw);
    if (arg2 != NULL) {
        r = PyObject_CallMethodObjArgs(self->metrics, str_max_gauge,
                                       str_sim_queue_depth, arg2, NULL);
        Py_XDECREF(r);
        if (r == NULL)
            PyErr_Clear();
        Py_DECREF(arg2);
    }
    else
        PyErr_Clear();
    PyErr_Restore(exc_type, exc_value, exc_tb);
}

/* The finally clause shared by every run() exit: clear the running flag
 * and record the simulated horizon gauge.  Preserves a pending error. */
static void
csim_run_finally(CSim *self)
{
    PyObject *exc_type, *exc_value, *exc_tb;
    PyObject *metrics = self->metrics;
    int m_on;
    self->running = 0;
    PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
    m_on = attr_is_true(metrics, str_enabled);
    if (m_on < 0)
        PyErr_Clear();
    else if (m_on) {
        PyObject *pid = PyObject_GetAttr(self->tracer, str_pid);
        if (pid == NULL)
            PyErr_Clear();
        else {
            PyObject *meth = PyObject_GetAttr(metrics, str_max_gauge);
            if (meth == NULL)
                PyErr_Clear();
            else {
                PyObject *cargs = Py_BuildValue("(Od)", str_sim_now_ms, self->now);
                PyObject *kwargs = PyDict_New();
                if (cargs != NULL && kwargs != NULL &&
                    PyDict_SetItem(kwargs, str_kwarg_pid, pid) == 0) {
                    PyObject *r = PyObject_Call(meth, cargs, kwargs);
                    Py_XDECREF(r);
                    if (r == NULL)
                        PyErr_Clear();
                }
                else
                    PyErr_Clear();
                Py_XDECREF(cargs);
                Py_XDECREF(kwargs);
                Py_DECREF(meth);
            }
            Py_DECREF(pid);
        }
    }
    PyErr_Restore(exc_type, exc_value, exc_tb);
}

static PyObject *
csim_run(CSim *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    int has_until = 0, has_max = 0;
    double until = 0.0;
    long long max_events = 0, fired = 0;
    CQueue *q;
    PyObject *tracer, *metrics;
    int m_on, t_on;
    int err = 0;

    if (csim_check_ready(self) < 0)
        return NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &max_obj))
        return NULL;
    if (until_obj != Py_None) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
        has_until = 1;
    }
    if (max_obj != Py_None) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
        has_max = 1;
    }

    self->running = 1;
    self->stopped = 0;
    q = self->queue;
    tracer = self->tracer;
    metrics = self->metrics;
    m_on = attr_is_true(metrics, str_enabled);
    if (m_on < 0) {
        err = 1;
        goto done;
    }
    t_on = attr_is_true(tracer, str_enabled);
    if (t_on < 0) {
        err = 1;
        goto done;
    }

    if (!has_until && !has_max) {
        if (!m_on && !t_on) {
            /* Unbounded quiet drain: the overwhelmingly common call. */
            while (q->size > 0 && q->foreground != 0 && !self->stopped) {
                HeapEntry top = cq_pop_top(q);
                CEvent *ev = top.ev;
                PyObject *r;
                if (ev->cancelled) {
                    Py_DECREF(ev);
                    continue;
                }
                Py_CLEAR(ev->queue);
                q->live -= 1;
                if (!ev->daemon)
                    q->foreground -= 1;
                self->now = top.time;
                self->events_processed += 1;
                r = PyObject_Call(ev->fn, ev->args, NULL);
                Py_DECREF(ev);
                if (r == NULL) {
                    err = 1;
                    break;
                }
                Py_DECREF(r);
            }
        }
        else {
            int batched;
            PyObject *mt = PyObject_GetAttr(metrics, str__tracer);
            if (mt == NULL) {
                err = 1;
                goto done;
            }
            batched = (m_on && !t_on && mt == Py_None);
            Py_DECREF(mt);
            if (batched) {
                /* Metrics on, nothing mirrors increments into a trace
                 * stream: accumulate locally, flush once (counts sum,
                 * max is associative — final values identical). */
                long long dispatched = 0;
                Py_ssize_t depth_hw = 0;
                while (q->size > 0 && q->foreground != 0 && !self->stopped) {
                    HeapEntry top = cq_pop_top(q);
                    CEvent *ev = top.ev;
                    PyObject *r;
                    if (ev->cancelled) {
                        Py_DECREF(ev);
                        continue;
                    }
                    Py_CLEAR(ev->queue);
                    q->live -= 1;
                    if (!ev->daemon)
                        q->foreground -= 1;
                    self->now = top.time;
                    dispatched += 1;
                    if (q->size > depth_hw)
                        depth_hw = q->size;
                    r = PyObject_Call(ev->fn, ev->args, NULL);
                    Py_DECREF(ev);
                    if (r == NULL) {
                        err = 1;
                        break;
                    }
                    Py_DECREF(r);
                }
                csim_flush_batched(self, dispatched, depth_hw);
            }
            else {
                /* Observed drain: per-event metrics/trace emission. */
                while (q->size > 0 && q->foreground != 0 && !self->stopped) {
                    HeapEntry top = cq_pop_top(q);
                    CEvent *ev = top.ev;
                    PyObject *r;
                    if (ev->cancelled) {
                        Py_DECREF(ev);
                        continue;
                    }
                    Py_CLEAR(ev->queue);
                    q->live -= 1;
                    if (!ev->daemon)
                        q->foreground -= 1;
                    self->now = top.time;
                    self->events_processed += 1;
                    r = csim_observe_dispatch(self, ev);
                    if (r == NULL) {
                        Py_DECREF(ev);
                        err = 1;
                        break;
                    }
                    Py_DECREF(r);
                    r = PyObject_Call(ev->fn, ev->args, NULL);
                    Py_DECREF(ev);
                    if (r == NULL) {
                        err = 1;
                        break;
                    }
                    Py_DECREF(r);
                }
            }
        }
    }
    else {
        /* Bounded drain: horizon and/or event budget. */
        while (!self->stopped) {
            HeapEntry top;
            CEvent *ev;
            PyObject *r;
            double next_time;
            if (has_max && fired >= max_events)
                break;
            while (q->size > 0 && q->heap[0].ev->cancelled) {
                HeapEntry dead = cq_pop_top(q);
                Py_DECREF(dead.ev);
            }
            if (q->size == 0)
                break;
            next_time = q->heap[0].time;
            if (has_until && next_time > until)
                break;
            if (!has_until && q->foreground == 0)
                break;  /* only background daemons remain: drained */
            top = cq_pop_top(q);
            ev = top.ev;
            Py_CLEAR(ev->queue);
            q->live -= 1;
            if (!ev->daemon)
                q->foreground -= 1;
            self->now = next_time;
            self->events_processed += 1;
            m_on = attr_is_true(metrics, str_enabled);
            if (m_on < 0) {
                Py_DECREF(ev);
                err = 1;
                break;
            }
            t_on = m_on ? 0 : attr_is_true(tracer, str_enabled);
            if (t_on < 0) {
                Py_DECREF(ev);
                err = 1;
                break;
            }
            if (m_on || t_on) {
                r = csim_observe_dispatch(self, ev);
                if (r == NULL) {
                    Py_DECREF(ev);
                    err = 1;
                    break;
                }
                Py_DECREF(r);
            }
            r = PyObject_Call(ev->fn, ev->args, NULL);
            Py_DECREF(ev);
            if (r == NULL) {
                err = 1;
                break;
            }
            Py_DECREF(r);
            fired += 1;
        }
    }

done:
    csim_run_finally(self);
    if (err)
        return NULL;
    if (has_until && self->now < until && !self->stopped)
        self->now = until;
    Py_RETURN_NONE;
}

static PyObject *
csim_stop(CSim *self, PyObject *Py_UNUSED(ignored))
{
    self->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
csim_get_pending(CSim *self, void *closure)
{
    if (csim_check_ready(self) < 0)
        return NULL;
    return PyLong_FromSsize_t(self->queue->live);
}

static PyObject *
csim_get_foreground(CSim *self, void *closure)
{
    if (csim_check_ready(self) < 0)
        return NULL;
    return PyLong_FromSsize_t(self->queue->foreground);
}

static PyObject *
csim_get_events_processed(CSim *self, void *closure)
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyObject *
csim_get_running(CSim *self, void *closure)
{
    return PyBool_FromLong(self->running);
}

static PyObject *
csim_get_stopped(CSim *self, void *closure)
{
    return PyBool_FromLong(self->stopped);
}

static PyGetSetDef csim_getset[] = {
    {"pending_events", (getter)csim_get_pending, NULL, NULL, NULL},
    {"foreground_pending", (getter)csim_get_foreground, NULL,
     "Pending non-daemon events (what keeps run() alive).", NULL},
    {"events_processed", (getter)csim_get_events_processed, NULL, NULL, NULL},
    {"_events_processed", (getter)csim_get_events_processed, NULL, NULL, NULL},
    {"_running", (getter)csim_get_running, NULL, NULL, NULL},
    {"_stopped", (getter)csim_get_stopped, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef csim_members[] = {
    {"now", T_DOUBLE, offsetof(CSim, now), 0, "Current simulated time (ms)."},
    {"seed", T_OBJECT_EX, offsetof(CSim, seed), READONLY, NULL},
    {"rng", T_OBJECT_EX, offsetof(CSim, rng), 0, NULL},
    {"tracer", T_OBJECT_EX, offsetof(CSim, tracer), 0, NULL},
    {"metrics", T_OBJECT_EX, offsetof(CSim, metrics), 0, NULL},
    {"_queue", T_OBJECT_EX, offsetof(CSim, queue), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyMethodDef csim_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))csim_schedule, METH_FASTCALL,
     "schedule(delay, fn, *args) -> Event"},
    {"schedule_at", (PyCFunction)(void (*)(void))csim_schedule_at, METH_FASTCALL,
     "schedule_at(time, fn, *args) -> Event"},
    {"call_soon", (PyCFunction)(void (*)(void))csim_call_soon, METH_FASTCALL,
     "call_soon(fn, *args) -> Event"},
    {"schedule_daemon", (PyCFunction)(void (*)(void))csim_schedule_daemon,
     METH_FASTCALL, "schedule_daemon(delay, fn, *args) -> Event"},
    {"step", (PyCFunction)csim_step, METH_NOARGS,
     "Run the next event; False when the queue is empty."},
    {"run", (PyCFunction)(void (*)(void))csim_run,
     METH_VARARGS | METH_KEYWORDS,
     "run(until=None, max_events=None): drain the queue in time order."},
    {"stop", (PyCFunction)csim_stop, METH_NOARGS,
     "Stop run() after the current event finishes."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject CSim_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.SimulatorBase",
    .tp_basicsize = sizeof(CSim),
    .tp_dealloc = (destructor)csim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled deterministic discrete-event simulator core.",
    .tp_traverse = (traverseproc)csim_traverse,
    .tp_clear = (inquiry)csim_clear_gc,
    .tp_methods = csim_methods,
    .tp_members = csim_members,
    .tp_getset = csim_getset,
    .tp_init = (initproc)csim_init,
    .tp_new = csim_new,
};

/* ------------------------------------------------------------------ */
/* DispatchWorkload: the MK microbenchmark's actors, compiled.         */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    CSim *sim;              /* strong */
    PyObject *getrandbits;  /* bound rng.getrandbits */
    PyObject *victim;       /* the shared victim callable */
    long long mod;
    long long cancel_every;
    long long fired;
    long long cancelled;
    long long daemon_ticks;
    long long checksum;
} CWorkload;

typedef struct {
    PyObject_HEAD
    CWorkload *w;
    long long index;
    long long remaining;
} CActor;

typedef struct {
    PyObject_HEAD
    CWorkload *w;
} CTick;  /* victim and heartbeat share this layout */

static PyTypeObject CWorkload_Type;
static PyTypeObject CActor_Type;
static PyTypeObject CVictim_Type;
static PyTypeObject CHeartbeat_Type;

/* random.Random.randrange(0, 8) == _randbelow_with_getrandbits(8):
 * k = (8).bit_length() = 4; draw getrandbits(4); reject while r >= 8.
 * Replicated exactly so the compiled workload consumes the Mersenne
 * stream bit-for-bit like the interpreted one. */
static long
crand_below8(CWorkload *w)
{
    for (;;) {
        long v;
        PyObject *r = PyObject_CallOneArg(w->getrandbits, int_four);
        if (r == NULL)
            return -1;
        v = PyLong_AsLong(r);
        Py_DECREF(r);
        if (v == -1 && PyErr_Occurred())
            return -1;
        if (v < 8)
            return v;
    }
}

/* victim() — scheduled then immediately cancelled; never fires in a
 * correct kernel, but the checksum fold is implemented for parity. */
static PyObject *
cvictim_call(CTick *self, PyObject *args, PyObject *kwds)
{
    CWorkload *w = self->w;
    w->checksum = (w->checksum * 31 + 999983) % w->mod;
    Py_RETURN_NONE;
}

static PyObject *
cheartbeat_call(CTick *self, PyObject *args, PyObject *kwds)
{
    CWorkload *w = self->w;
    CEvent *ev;
    w->daemon_ticks += 1;
    ev = cq_push_internal(w->sim->queue, w->sim->now + 50.0,
                          (PyObject *)self, empty_tuple, 1);
    if (ev == NULL)
        return NULL;
    Py_DECREF(ev);
    Py_RETURN_NONE;
}

static PyObject *
cactor_call(CActor *self, PyObject *args, PyObject *kwds)
{
    CWorkload *w = self->w;
    CSim *sim = w->sim;
    CEvent *ev;
    w->fired += 1;
    w->checksum = (w->checksum * 31 + self->index
                   + (long long)(sim->now * 2.0)) % w->mod;
    if (w->fired % w->cancel_every == 0) {
        /* event = sim.schedule(1.0, victim); event.cancel() */
        ev = cq_push_internal(sim->queue, sim->now + 1.0, w->victim,
                              empty_tuple, 0);
        if (ev == NULL)
            return NULL;
        cevent_cancel_internal(ev);
        Py_DECREF(ev);
        w->cancelled += 1;
    }
    self->remaining -= 1;
    if (self->remaining > 0) {
        long r = crand_below8(w);
        if (r < 0)
            return NULL;
        ev = cq_push_internal(sim->queue, sim->now + (double)r * 0.5,
                              (PyObject *)self, empty_tuple, 0);
        if (ev == NULL)
            return NULL;
        Py_DECREF(ev);
    }
    Py_RETURN_NONE;
}

static int
cactor_traverse(CActor *self, visitproc visit, void *arg)
{
    Py_VISIT(self->w);
    return 0;
}

static int
cactor_clear(CActor *self)
{
    Py_CLEAR(self->w);
    return 0;
}

static void
cactor_dealloc(CActor *self)
{
    PyObject_GC_UnTrack(self);
    cactor_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
ctick_traverse(CTick *self, visitproc visit, void *arg)
{
    Py_VISIT(self->w);
    return 0;
}

static int
ctick_clear(CTick *self)
{
    Py_CLEAR(self->w);
    return 0;
}

static void
ctick_dealloc(CTick *self)
{
    PyObject_GC_UnTrack(self);
    ctick_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject CActor_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DispatchActor",
    .tp_basicsize = sizeof(CActor),
    .tp_dealloc = (destructor)cactor_dealloc,
    .tp_call = (ternaryfunc)cactor_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)cactor_traverse,
    .tp_clear = (inquiry)cactor_clear,
};

static PyTypeObject CVictim_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DispatchVictim",
    .tp_basicsize = sizeof(CTick),
    .tp_dealloc = (destructor)ctick_dealloc,
    .tp_call = (ternaryfunc)cvictim_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)ctick_traverse,
    .tp_clear = (inquiry)ctick_clear,
};

static PyTypeObject CHeartbeat_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DispatchHeartbeat",
    .tp_basicsize = sizeof(CTick),
    .tp_dealloc = (destructor)ctick_dealloc,
    .tp_call = (ternaryfunc)cheartbeat_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)ctick_traverse,
    .tp_clear = (inquiry)ctick_clear,
};

static int
cworkload_traverse(CWorkload *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->getrandbits);
    Py_VISIT(self->victim);
    return 0;
}

static int
cworkload_clear(CWorkload *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->getrandbits);
    Py_CLEAR(self->victim);
    return 0;
}

static void
cworkload_dealloc(CWorkload *self)
{
    PyObject_GC_UnTrack(self);
    cworkload_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
cworkload_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CWorkload *self = (CWorkload *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->sim = NULL;
    self->getrandbits = NULL;
    self->victim = NULL;
    self->mod = 1000000007;
    self->cancel_every = 16;
    self->fired = self->cancelled = self->daemon_ticks = self->checksum = 0;
    return (PyObject *)self;
}

/* DispatchWorkload(sim, rng, per_actor, actors=64, cancel_every=16,
 *                  mod=1000000007): schedules the heartbeat daemon and one
 * initial event per actor — the exact python setup order, consuming the
 * rng identically. */
static int
cworkload_init(CWorkload *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"sim", "rng", "per_actor", "actors",
                             "cancel_every", "mod", NULL};
    PyObject *sim_obj, *rng_obj;
    long long per_actor, actors = 64, cancel_every = 16, mod = 1000000007;
    long long index;
    CTick *heartbeat;
    CEvent *ev;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOL|LLL", kwlist,
                                     &sim_obj, &rng_obj, &per_actor,
                                     &actors, &cancel_every, &mod))
        return -1;
    if (!PyObject_TypeCheck(sim_obj, &CSim_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "DispatchWorkload needs a compiled SimulatorBase");
        return -1;
    }
    if (csim_check_ready((CSim *)sim_obj) < 0)
        return -1;
    Py_INCREF(sim_obj);
    Py_XSETREF(self->sim, (CSim *)sim_obj);
    Py_XSETREF(self->getrandbits, PyObject_GetAttr(rng_obj, str_getrandbits));
    if (self->getrandbits == NULL)
        return -1;
    self->mod = mod;
    self->cancel_every = cancel_every;
    self->fired = self->cancelled = self->daemon_ticks = self->checksum = 0;

    {
        CTick *victim = PyObject_GC_New(CTick, &CVictim_Type);
        if (victim == NULL)
            return -1;
        Py_INCREF(self);
        victim->w = self;
        PyObject_GC_Track(victim);
        Py_XSETREF(self->victim, (PyObject *)victim);
    }

    heartbeat = PyObject_GC_New(CTick, &CHeartbeat_Type);
    if (heartbeat == NULL)
        return -1;
    Py_INCREF(self);
    heartbeat->w = self;
    PyObject_GC_Track(heartbeat);
    /* sim.schedule_daemon(50.0, heartbeat) */
    ev = cq_push_internal(self->sim->queue, self->sim->now + 50.0,
                          (PyObject *)heartbeat, empty_tuple, 1);
    Py_DECREF(heartbeat);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);

    for (index = 0; index < actors; index++) {
        CActor *actor;
        long r = crand_below8(self);
        if (r < 0)
            return -1;
        actor = PyObject_GC_New(CActor, &CActor_Type);
        if (actor == NULL)
            return -1;
        Py_INCREF(self);
        actor->w = self;
        actor->index = index;
        actor->remaining = per_actor;
        PyObject_GC_Track(actor);
        ev = cq_push_internal(self->sim->queue,
                              self->sim->now + (double)r * 0.5,
                              (PyObject *)actor, empty_tuple, 0);
        Py_DECREF(actor);
        if (ev == NULL)
            return -1;
        Py_DECREF(ev);
    }
    return 0;
}

static PyMemberDef cworkload_members[] = {
    {"fired", T_LONGLONG, offsetof(CWorkload, fired), READONLY, NULL},
    {"cancelled", T_LONGLONG, offsetof(CWorkload, cancelled), READONLY, NULL},
    {"daemon_ticks", T_LONGLONG, offsetof(CWorkload, daemon_ticks), READONLY, NULL},
    {"checksum", T_LONGLONG, offsetof(CWorkload, checksum), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CWorkload_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.DispatchWorkload",
    .tp_basicsize = sizeof(CWorkload),
    .tp_dealloc = (destructor)cworkload_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled MK kernel-dispatch workload (actors + victim + heartbeat).",
    .tp_traverse = (traverseproc)cworkload_traverse,
    .tp_clear = (inquiry)cworkload_clear,
    .tp_members = cworkload_members,
    .tp_init = (initproc)cworkload_init,
    .tp_new = cworkload_new,
};

/* ------------------------------------------------------------------ */
/* NetSender: the quiet-path Network.send, compiled.                   */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *network;     /* repro.net.network.Network */
    CSim *sim;             /* strong; network.sim, proven compiled */
    PyObject *nodes;       /* network._nodes dict (shared, mutable) */
    PyObject *sample_ms;   /* bound latency.sample_ms */
    PyObject *rng;         /* network._rng */
    PyObject *deliver;     /* bound network._deliver */
    PyObject *fallback;    /* bound python Network.send */
    PyObject *partition_windows;  /* network.partitions._windows list */
    PyObject *loss_windows;       /* network._loss_windows list */
} CNetSender;

static PyTypeObject CNetSender_Type;

static int
cnetsender_traverse(CNetSender *self, visitproc visit, void *arg)
{
    Py_VISIT(self->network);
    Py_VISIT(self->sim);
    Py_VISIT(self->nodes);
    Py_VISIT(self->sample_ms);
    Py_VISIT(self->rng);
    Py_VISIT(self->deliver);
    Py_VISIT(self->fallback);
    Py_VISIT(self->partition_windows);
    Py_VISIT(self->loss_windows);
    return 0;
}

static int
cnetsender_clear(CNetSender *self)
{
    Py_CLEAR(self->network);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->nodes);
    Py_CLEAR(self->sample_ms);
    Py_CLEAR(self->rng);
    Py_CLEAR(self->deliver);
    Py_CLEAR(self->fallback);
    Py_CLEAR(self->partition_windows);
    Py_CLEAR(self->loss_windows);
    return 0;
}

static void
cnetsender_dealloc(CNetSender *self)
{
    PyObject_GC_UnTrack(self);
    cnetsender_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
cnetsender_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CNetSender *self = (CNetSender *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->network = NULL;
    self->sim = NULL;
    self->nodes = self->sample_ms = self->rng = NULL;
    self->deliver = self->fallback = NULL;
    self->partition_windows = self->loss_windows = NULL;
    return (PyObject *)self;
}

static PyObject *
grab_attr(PyObject *obj, const char *name)
{
    return PyObject_GetAttrString(obj, name);
}

static int
cnetsender_init(CNetSender *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"network", "fallback", NULL};
    PyObject *network, *fallback, *sim, *latency, *partitions;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO", kwlist,
                                     &network, &fallback))
        return -1;
    sim = grab_attr(network, "sim");
    if (sim == NULL)
        return -1;
    if (!PyObject_TypeCheck(sim, &CSim_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "NetSender needs a compiled SimulatorBase network.sim");
        return -1;
    }
    if (csim_check_ready((CSim *)sim) < 0) {
        Py_DECREF(sim);
        return -1;
    }
    Py_INCREF(network);
    Py_XSETREF(self->network, network);
    Py_XSETREF(self->sim, (CSim *)sim);
    Py_INCREF(fallback);
    Py_XSETREF(self->fallback, fallback);
    Py_XSETREF(self->nodes, grab_attr(network, "_nodes"));
    if (self->nodes == NULL || !PyDict_Check(self->nodes))
        goto fail;
    latency = grab_attr(network, "latency");
    if (latency == NULL)
        goto fail;
    Py_XSETREF(self->sample_ms, grab_attr(latency, "sample_ms"));
    Py_DECREF(latency);
    if (self->sample_ms == NULL)
        goto fail;
    Py_XSETREF(self->rng, grab_attr(network, "_rng"));
    if (self->rng == NULL)
        goto fail;
    Py_XSETREF(self->deliver, grab_attr(network, "_deliver"));
    if (self->deliver == NULL)
        goto fail;
    partitions = grab_attr(network, "partitions");
    if (partitions == NULL)
        goto fail;
    Py_XSETREF(self->partition_windows, grab_attr(partitions, "_windows"));
    Py_DECREF(partitions);
    if (self->partition_windows == NULL || !PyList_Check(self->partition_windows))
        goto fail;
    Py_XSETREF(self->loss_windows, grab_attr(network, "_loss_windows"));
    if (self->loss_windows == NULL || !PyList_Check(self->loss_windows))
        goto fail;
    return 0;
fail:
    if (!PyErr_Occurred())
        PyErr_SetString(PyExc_TypeError, "NetSender: unexpected Network layout");
    return -1;
}

/* send(sender_id, recipient_id, message) — handles the fully-quiet path
 * (no metrics, no tracer, no partitions, no loss) entirely in C; any
 * instrumentation or fault injection delegates to the python
 * Network.send, which performs the identical observable operations. */
static PyObject *
cnetsender_call(CNetSender *self, PyObject *args, PyObject *kwds)
{
    PyObject *sid, *rid, *message;
    PyObject *sender, *recipient, *sent_at, *count, *newcount;
    PyObject *src_dc, *dst_dc, *now_obj, *delay_obj, *dargs;
    CSim *sim = self->sim;
    CEvent *ev;
    double now, delay, loss;
    int quiet;
    PyObject *lp;

    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError, "send() takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_UnpackTuple(args, "send", 3, 3, &sid, &rid, &message))
        return NULL;

    /* Fast-path eligibility: everything observable must be off. */
    quiet = 1;
    {
        int m_on = attr_is_true(sim->metrics, str_enabled);
        if (m_on < 0)
            return NULL;
        if (m_on)
            quiet = 0;
        else {
            int t_on = attr_is_true(sim->tracer, str_enabled);
            if (t_on < 0)
                return NULL;
            if (t_on)
                quiet = 0;
        }
    }
    if (quiet && PyList_GET_SIZE(self->partition_windows) != 0)
        quiet = 0;
    if (quiet && PyList_GET_SIZE(self->loss_windows) != 0)
        quiet = 0;
    if (quiet) {
        lp = PyObject_GetAttr(self->network, str_loss_probability);
        if (lp == NULL)
            return NULL;
        loss = PyFloat_AsDouble(lp);
        Py_DECREF(lp);
        if (loss == -1.0 && PyErr_Occurred())
            return NULL;
        if (loss > 0.0)
            quiet = 0;
    }
    if (!quiet)
        return PyObject_Call(self->fallback, args, NULL);

    now = sim->now;
    sender = PyDict_GetItemWithError(self->nodes, sid);
    if (sender == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, sid);
        return NULL;
    }
    recipient = PyDict_GetItemWithError(self->nodes, rid);
    if (recipient == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, rid);
        return NULL;
    }
    if (PyObject_SetAttr(message, str_sender, sid) < 0)
        return NULL;
    if (PyObject_SetAttr(message, str_recipient, rid) < 0)
        return NULL;
    sent_at = PyFloat_FromDouble(now);
    if (sent_at == NULL)
        return NULL;
    if (PyObject_SetAttr(message, str_sent_at, sent_at) < 0) {
        Py_DECREF(sent_at);
        return NULL;
    }
    Py_DECREF(sent_at);
    count = PyObject_GetAttr(self->network, str_messages_sent);
    if (count == NULL)
        return NULL;
    newcount = PyNumber_Add(count, int_one);
    Py_DECREF(count);
    if (newcount == NULL)
        return NULL;
    if (PyObject_SetAttr(self->network, str_messages_sent, newcount) < 0) {
        Py_DECREF(newcount);
        return NULL;
    }
    Py_DECREF(newcount);

    src_dc = PyObject_GetAttr(sender, str_datacenter);
    if (src_dc == NULL)
        return NULL;
    dst_dc = PyObject_GetAttr(recipient, str_datacenter);
    if (dst_dc == NULL) {
        Py_DECREF(src_dc);
        return NULL;
    }
    now_obj = PyFloat_FromDouble(now);
    if (now_obj == NULL) {
        Py_DECREF(src_dc);
        Py_DECREF(dst_dc);
        return NULL;
    }
    delay_obj = PyObject_CallFunctionObjArgs(self->sample_ms, src_dc, dst_dc,
                                             now_obj, self->rng, NULL);
    Py_DECREF(src_dc);
    Py_DECREF(dst_dc);
    Py_DECREF(now_obj);
    if (delay_obj == NULL)
        return NULL;
    delay = PyFloat_AsDouble(delay_obj);
    Py_DECREF(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;

    dargs = PyTuple_Pack(2, rid, message);
    if (dargs == NULL)
        return NULL;
    ev = cq_push_internal(sim->queue, now + delay, self->deliver, dargs, 0);
    Py_DECREF(dargs);
    if (ev == NULL)
        return NULL;
    Py_DECREF(ev);
    Py_RETURN_NONE;
}

static PyTypeObject CNetSender_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.NetSender",
    .tp_basicsize = sizeof(CNetSender),
    .tp_dealloc = (destructor)cnetsender_dealloc,
    .tp_call = (ternaryfunc)cnetsender_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled quiet-path Network.send (falls back when instrumented).",
    .tp_traverse = (traverseproc)cnetsender_traverse,
    .tp_clear = (inquiry)cnetsender_clear,
    .tp_init = (initproc)cnetsender_init,
    .tp_new = cnetsender_new,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._ckernel",
    .m_doc = "Compiled simulator kernel (optional; see repro.engine).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *m;

    str_enabled = PyUnicode_InternFromString("enabled");
    str__tracer = PyUnicode_InternFromString("_tracer");
    str_pid = PyUnicode_InternFromString("pid");
    str_kwarg_pid = PyUnicode_InternFromString("pid");
    str_inc = PyUnicode_InternFromString("inc");
    str_max_gauge = PyUnicode_InternFromString("max_gauge");
    str_sim_events = PyUnicode_InternFromString("sim.events");
    str_sim_queue_depth = PyUnicode_InternFromString("sim.queue_depth");
    str_sim_now_ms = PyUnicode_InternFromString("sim.now_ms");
    str__observe_dispatch = PyUnicode_InternFromString("_observe_dispatch");
    str_getrandbits = PyUnicode_InternFromString("getrandbits");
    str_messages_sent = PyUnicode_InternFromString("messages_sent");
    str_sender = PyUnicode_InternFromString("sender");
    str_recipient = PyUnicode_InternFromString("recipient");
    str_sent_at = PyUnicode_InternFromString("sent_at");
    str_datacenter = PyUnicode_InternFromString("datacenter");
    str_loss_probability = PyUnicode_InternFromString("loss_probability");
    if (str_enabled == NULL || str__tracer == NULL || str_pid == NULL ||
        str_kwarg_pid == NULL || str_inc == NULL || str_max_gauge == NULL ||
        str_sim_events == NULL || str_sim_queue_depth == NULL ||
        str_sim_now_ms == NULL || str__observe_dispatch == NULL ||
        str_getrandbits == NULL || str_messages_sent == NULL ||
        str_sender == NULL || str_recipient == NULL || str_sent_at == NULL ||
        str_datacenter == NULL || str_loss_probability == NULL)
        return NULL;
    empty_tuple = PyTuple_New(0);
    if (empty_tuple == NULL)
        return NULL;
    int_four = PyLong_FromLong(4);
    if (int_four == NULL)
        return NULL;
    int_one = PyLong_FromLong(1);
    if (int_one == NULL)
        return NULL;

    if (PyType_Ready(&CEvent_Type) < 0 || PyType_Ready(&CQueue_Type) < 0 ||
        PyType_Ready(&CSim_Type) < 0 || PyType_Ready(&CWorkload_Type) < 0 ||
        PyType_Ready(&CActor_Type) < 0 || PyType_Ready(&CVictim_Type) < 0 ||
        PyType_Ready(&CHeartbeat_Type) < 0 ||
        PyType_Ready(&CNetSender_Type) < 0)
        return NULL;

    m = PyModule_Create(&ckernel_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&CEvent_Type);
    PyModule_AddObject(m, "Event", (PyObject *)&CEvent_Type);
    Py_INCREF(&CQueue_Type);
    PyModule_AddObject(m, "EventQueue", (PyObject *)&CQueue_Type);
    Py_INCREF(&CSim_Type);
    PyModule_AddObject(m, "SimulatorBase", (PyObject *)&CSim_Type);
    Py_INCREF(&CWorkload_Type);
    PyModule_AddObject(m, "DispatchWorkload", (PyObject *)&CWorkload_Type);
    Py_INCREF(&CNetSender_Type);
    PyModule_AddObject(m, "NetSender", (PyObject *)&CNetSender_Type);
    PyModule_AddIntConstant(m, "ABI_VERSION", CKERNEL_ABI);
    return m;
}
