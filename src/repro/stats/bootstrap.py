"""Bootstrap confidence intervals for latency statistics.

Simulated runs are deterministic per seed, but any single seed is still one
draw from the workload distribution; reporting a percentile without an
uncertainty band invites over-reading small differences.  The percentile
bootstrap here resamples the latency list with replacement and reports the
empirical interval of the statistic across resamples — assumption-free and
good enough for the heavy-tailed distributions commit latencies follow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class ConfidenceInterval:
    point: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.point:.2f} [{self.low:.2f}, {self.high:.2f}] @ {self.confidence:.0%}"

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _percentile(ordered: Sequence[float], p: float) -> float:
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    position = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[List[float]], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[Random] = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of ``statistic`` over ``samples``.

    ``statistic`` receives a *sorted* resample (most latency statistics are
    order statistics, and sorting once here lets them be O(1)).
    """
    if not samples:
        raise ValueError("bootstrap needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    rng = rng if rng is not None else Random(0)
    data = list(samples)
    n = len(data)
    point = statistic(sorted(data))
    estimates = []
    for _ in range(n_resamples):
        resample = sorted(data[rng.randrange(n)] for _ in range(n))
        estimates.append(statistic(resample))
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=point,
        low=_percentile(estimates, 100.0 * alpha),
        high=_percentile(estimates, 100.0 * (1.0 - alpha)),
        confidence=confidence,
    )


def percentile_ci(
    samples: Sequence[float],
    p: float,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[Random] = None,
) -> ConfidenceInterval:
    """Bootstrap CI of the ``p``-th percentile (p in [0, 100])."""
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    return bootstrap_ci(
        samples,
        statistic=lambda ordered: _percentile(ordered, p),
        n_resamples=n_resamples,
        confidence=confidence,
        rng=rng,
    )


def mean_ci(
    samples: Sequence[float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[Random] = None,
) -> ConfidenceInterval:
    return bootstrap_ci(
        samples,
        statistic=lambda ordered: sum(ordered) / len(ordered),
        n_resamples=n_resamples,
        confidence=confidence,
        rng=rng,
    )


def diff_of_means_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[Random] = None,
) -> ConfidenceInterval:
    """Two-sample bootstrap CI of ``mean(candidate) - mean(baseline)``.

    Each resample draws both groups independently with replacement, so the
    interval reflects the noise of *both* measurements; a CI excluding zero
    is the "beyond run-to-run noise" test ``repro bench --compare`` uses.
    Identical constant samples collapse to the degenerate interval
    ``[0, 0]``, which contains zero — a self-comparison is never flagged.
    """
    if not baseline or not candidate:
        raise ValueError("bootstrap needs at least one sample on each side")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    rng = rng if rng is not None else Random(0)
    a = list(baseline)
    b = list(candidate)
    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    estimates = []
    for _ in range(n_resamples):
        ra = sum(a[rng.randrange(len(a))] for _ in range(len(a))) / len(a)
        rb = sum(b[rng.randrange(len(b))] for _ in range(len(b))) / len(b)
        estimates.append(rb - ra)
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=mean_b - mean_a,
        low=_percentile(estimates, 100.0 * alpha),
        high=_percentile(estimates, 100.0 * (1.0 - alpha)),
        confidence=confidence,
    )
