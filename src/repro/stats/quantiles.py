"""Quantile estimation: the P² streaming estimator and an exact sketch.

Latency percentiles (p50/p95/p99) are the currency of every figure in the
evaluation.  :class:`QuantileSketch` keeps all samples (experiments here are
tens of thousands of transactions, so exact is affordable and removes one
source of reproduction noise); :class:`P2Quantile` is the constant-space
estimator for components that must track quantiles online, such as the
latency monitor feeding the likelihood model.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import List, Sequence


class P2Quantile:
    """Jain & Chlamtac's P² algorithm for one quantile, O(1) space."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    def update(self, sample: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            insort(self._initial, sample)
            if len(self._initial) == 5:
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return

        heights, positions = self._heights, self._positions
        if sample < heights[0]:
            heights[0] = sample
            cell = 0
        elif sample >= heights[4]:
            heights[4] = sample
            cell = 3
        else:
            cell = 0
            while cell < 3 and sample >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                sign = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, sign)
                positions[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + sign / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + sign) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - sign) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float:
        if not self._initial:
            return math.nan
        if len(self._initial) < 5:
            index = max(0, min(len(self._initial) - 1, int(self.q * len(self._initial))))
            return self._initial[index]
        return self._heights[2]


class QuantileSketch:
    """Exact quantiles over retained samples."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def update(self, sample: float) -> None:
        self._samples.append(sample)
        self._sorted = False

    def extend(self, samples: Sequence[float]) -> None:
        self._samples.extend(samples)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile (numpy 'linear' convention)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._samples:
            return math.nan
        self._ensure_sorted()
        samples = self._samples
        if len(samples) == 1:
            return samples[0]
        position = q * (len(samples) - 1)
        low = int(math.floor(position))
        high = min(low + 1, len(samples) - 1)
        fraction = position - low
        return samples[low] * (1.0 - fraction) + samples[high] * fraction

    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    def cdf_points(self, n_points: int = 100) -> List[tuple]:
        """(value, cumulative fraction) pairs for plotting a CDF."""
        if not self._samples:
            return []
        self._ensure_sorted()
        total = len(self._samples)
        points = []
        for i in range(1, n_points + 1):
            q = i / n_points
            index = min(total - 1, max(0, int(math.ceil(q * total)) - 1))
            points.append((self._samples[index], q))
        return points
