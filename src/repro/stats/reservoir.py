"""Fixed-size uniform reservoir sampling (Vitter's algorithm R)."""

from __future__ import annotations

from random import Random
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class ReservoirSample(Generic[T]):
    """Keeps a uniform sample of at most ``capacity`` items from a stream."""

    def __init__(self, capacity: int, rng: Optional[Random] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = rng if rng is not None else Random(0)
        self._items: List[T] = []
        self.seen = 0

    def update(self, item: T) -> None:
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        index = self._rng.randrange(self.seen)
        if index < self.capacity:
            self._items[index] = item

    @property
    def items(self) -> List[T]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)
