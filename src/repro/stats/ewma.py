"""Exponentially weighted estimators.

The commit-likelihood model tracks per-record conflict behaviour with EWMA
rates: recent outcomes dominate so the predictor adapts when a record heats
up or cools down, which is what makes the prediction useful during load
spikes.
"""

from __future__ import annotations


class EwmaEstimator:
    """EWMA of a real-valued signal: ``estimate <- a*sample + (1-a)*estimate``."""

    def __init__(self, alpha: float = 0.1, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = initial
        self.count = 0

    def update(self, sample: float) -> float:
        if self.count == 0:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value
        self.count += 1
        return self.value


class EwmaRate:
    """EWMA estimate of the probability of a binary event.

    ``update(True)`` moves the estimate toward 1, ``update(False)`` toward 0.
    With no observations the rate falls back to a configurable prior, and the
    estimate is *shrunk* toward the prior while the sample count is small —
    a pseudo-count Bayesian smoothing that prevents one early conflict from
    predicting certain doom for a record.
    """

    def __init__(self, alpha: float = 0.1, prior: float = 0.0, prior_strength: float = 5.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= prior <= 1.0:
            raise ValueError("prior must be a probability")
        if prior_strength < 0:
            raise ValueError("prior_strength must be >= 0")
        self.alpha = alpha
        self.prior = prior
        self.prior_strength = prior_strength
        self._raw = prior
        self.count = 0

    def update(self, event: bool) -> None:
        sample = 1.0 if event else 0.0
        if self.count == 0:
            self._raw = sample
        else:
            self._raw = self.alpha * sample + (1.0 - self.alpha) * self._raw
        self.count += 1

    @property
    def rate(self) -> float:
        if self.count == 0:
            return self.prior
        weight = self.count / (self.count + self.prior_strength)
        return weight * self._raw + (1.0 - weight) * self.prior
