"""Histograms and latency CDFs for reporting."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class Histogram:
    """Fixed-width-bin histogram over ``[low, high)`` with overflow bins."""

    def __init__(self, low: float, high: float, n_bins: int) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.low = low
        self.high = high
        self.n_bins = n_bins
        self._width = (high - low) / n_bins
        self.counts = [0] * n_bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def update(self, sample: float) -> None:
        self.total += 1
        if sample < self.low:
            self.underflow += 1
        elif sample >= self.high:
            self.overflow += 1
        else:
            self.counts[int((sample - self.low) / self._width)] += 1

    def bin_edges(self) -> List[float]:
        return [self.low + i * self._width for i in range(self.n_bins + 1)]

    def density(self) -> List[float]:
        if self.total == 0:
            return [0.0] * self.n_bins
        return [count / self.total for count in self.counts]


class LatencyCdf:
    """Collects latency samples and renders CDF rows for a figure.

    ``series(percentiles)`` returns (percentile, latency) pairs; figures in
    the paper plot latency on x and cumulative fraction on y, which
    :meth:`rows` produces directly.
    """

    DEFAULT_PERCENTILES = (1, 5, 10, 25, 50, 75, 90, 95, 99)

    def __init__(self) -> None:
        self._samples: List[float] = []

    def update(self, sample_ms: float) -> None:
        self._samples.append(sample_ms)

    def extend(self, samples: Sequence[float]) -> None:
        self._samples.extend(samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """p in [0, 100]."""
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(position))
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    def rows(self, percentiles: Sequence[float] = DEFAULT_PERCENTILES) -> List[Tuple[float, float]]:
        """(percentile, latency_ms) rows, the series a CDF figure plots."""
        return [(p, self.percentile(p)) for p in percentiles]
