"""Calibration (reliability) measurement for probability predictions.

Experiment F8 asks: when PLANET predicts a commit likelihood of ``p``, do
about ``p`` of those transactions actually commit?  We bucket predictions
into equal-width bins and compare each bin's mean prediction with its
observed commit frequency; the summary statistic is the expected calibration
error (ECE), the prediction-weighted mean absolute gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass
class CalibrationRow:
    bin_low: float
    bin_high: float
    count: int
    mean_predicted: float
    observed_rate: float

    @property
    def gap(self) -> float:
        return abs(self.mean_predicted - self.observed_rate)


class CalibrationBins:
    def __init__(self, n_bins: int = 10) -> None:
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.n_bins = n_bins
        self._counts = [0] * n_bins
        self._predicted_sums = [0.0] * n_bins
        self._outcome_sums = [0] * n_bins

    def update(self, predicted: float, committed: bool) -> None:
        if not 0.0 <= predicted <= 1.0:
            raise ValueError(f"predicted probability {predicted} outside [0, 1]")
        index = min(int(predicted * self.n_bins), self.n_bins - 1)
        self._counts[index] += 1
        self._predicted_sums[index] += predicted
        self._outcome_sums[index] += 1 if committed else 0

    @property
    def total(self) -> int:
        return sum(self._counts)

    def rows(self) -> List[CalibrationRow]:
        rows = []
        width = 1.0 / self.n_bins
        for i in range(self.n_bins):
            count = self._counts[i]
            rows.append(
                CalibrationRow(
                    bin_low=i * width,
                    bin_high=(i + 1) * width,
                    count=count,
                    mean_predicted=self._predicted_sums[i] / count if count else math.nan,
                    observed_rate=self._outcome_sums[i] / count if count else math.nan,
                )
            )
        return rows

    def expected_calibration_error(self) -> float:
        total = self.total
        if total == 0:
            return math.nan
        ece = 0.0
        for row in self.rows():
            if row.count:
                ece += (row.count / total) * row.gap
        return ece
