"""Compatibility shim: the metrics registry was promoted to ``repro.obs``.

``MetricsRegistry`` grew gauges, labelled histograms, and a process-wide
install (mirroring the tracer's capture) and now lives in
:mod:`repro.obs.metrics`, next to the event bus it feeds.  This module
keeps the historical import path working for per-run registries built by
the harness and sessions.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, ValueHist

__all__ = ["MetricsRegistry", "ValueHist"]
