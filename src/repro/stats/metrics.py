"""A small metrics registry: counters, latency collectors, labelled series.

Experiment runners write into one registry per run; reporting code reads it
back out.  Keeping metrics centralised (instead of scattered over ad-hoc
lists) is what lets the determinism property test compare whole runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.events import Tracer
from repro.stats.histogram import LatencyCdf


class MetricsRegistry:
    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._latencies: Dict[str, LatencyCdf] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self._tracer: Optional[Tracer] = None
        self._clock: Callable[[], float] = lambda: 0.0

    # Observability adapter --------------------------------------------
    def bind_tracer(self, tracer: Tracer, clock: Callable[[], float]) -> None:
        """Mirror every counter increment and latency sample into the obs
        event stream (category ``metric``), timestamped by ``clock``.

        The registry has no time source of its own, hence the explicit
        clock (normally ``lambda: sim.now``); unbound registries behave
        exactly as before.
        """
        self._tracer = tracer
        self._clock = clock

    # Counters ----------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(self._clock(), "metric", name, delta=amount)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    # Latency samples ---------------------------------------------------
    def latency(self, name: str) -> LatencyCdf:
        collector = self._latencies.get(name)
        if collector is None:
            collector = LatencyCdf()
            self._latencies[name] = collector
        return collector

    def observe_latency(self, name: str, value_ms: float) -> None:
        self.latency(name).update(value_ms)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(self._clock(), "metric", name, value_ms=value_ms)

    def latency_names(self) -> List[str]:
        return sorted(self._latencies)

    # Time/value series -------------------------------------------------
    def record_point(self, name: str, x: float, y: float) -> None:
        self._series[name].append((x, y))

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, []))

    # Whole-run digest (used by determinism tests) ----------------------
    def digest(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self._counters.items())]
        for name in self.latency_names():
            collector = self._latencies[name]
            parts.append(
                f"{name}:n={collector.count},p50={collector.percentile(50):.6f},"
                f"p99={collector.percentile(99):.6f}"
            )
        for name in sorted(self._series):
            points = ";".join(f"{x:.6f},{y:.6f}" for x, y in self._series[name])
            parts.append(f"{name}:[{points}]")
        return "|".join(parts)
