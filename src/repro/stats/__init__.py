"""Online statistics used by the PLANET layer and the experiment harness."""

from repro.stats.ewma import EwmaEstimator, EwmaRate
from repro.stats.quantiles import P2Quantile, QuantileSketch
from repro.stats.reservoir import ReservoirSample
from repro.stats.histogram import Histogram, LatencyCdf
from repro.stats.bootstrap import ConfidenceInterval, bootstrap_ci, mean_ci, percentile_ci
from repro.stats.calibration import CalibrationBins
from repro.stats.metrics import MetricsRegistry

__all__ = [
    "EwmaEstimator",
    "EwmaRate",
    "P2Quantile",
    "QuantileSketch",
    "ReservoirSample",
    "Histogram",
    "LatencyCdf",
    "CalibrationBins",
    "ConfidenceInterval",
    "bootstrap_ci",
    "percentile_ci",
    "mean_ci",
    "MetricsRegistry",
]
