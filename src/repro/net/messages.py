"""Base message type for everything that crosses the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar


_message_ids = itertools.count(1)


@dataclass
class Message:
    """Base class for network messages.

    Concrete protocol messages (Paxos, MDCC, 2PC) subclass this near the
    protocol code that handles them.  ``sender`` and ``recipient`` are node
    ids assigned by :class:`~repro.net.network.Network`.  ``msg_id`` is unique
    per simulation run for tracing.
    """

    sender: str = field(default="", kw_only=True)
    recipient: str = field(default="", kw_only=True)
    sent_at: float = field(default=0.0, kw_only=True)
    msg_id: int = field(default_factory=lambda: next(_message_ids), kw_only=True)

    @property
    def kind(self) -> str:
        return type(self).__name__

    def approx_size_bytes(self) -> int:
        """Rough wire-size proxy used by the byte counters.

        The simulator has no serialisation layer, so the length of the
        dataclass repr stands in; what matters for the per-kind byte
        metrics is the *relative* weight of option payloads vs. votes.
        """
        return len(repr(self))
