"""Base message type for everything that crosses the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional


_message_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """Base class for network messages.

    Concrete protocol messages (Paxos, MDCC, 2PC) subclass this near the
    protocol code that handles them.  ``sender`` and ``recipient`` are node
    ids assigned by :class:`~repro.net.network.Network`.  ``msg_id`` is unique
    per simulation run for tracing.

    Hot-path notes: instances are ``__slots__``-backed (one small object per
    simulated message, no per-instance dict), ``kind`` is a class attribute
    stamped at subclass creation rather than a property computing
    ``type(self).__name__`` per metric label, and the wire-size proxy is
    cached after its first computation.
    """

    sender: str = field(default="", kw_only=True)
    recipient: str = field(default="", kw_only=True)
    sent_at: float = field(default=0.0, kw_only=True)
    msg_id: int = field(default_factory=lambda: next(_message_ids), kw_only=True)
    _approx_size: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    #: The message's type name, used as the ``kind=`` metric/trace label.
    kind = "Message"

    def __init_subclass__(cls, **kwargs) -> None:
        # Explicit two-arg super: ``dataclass(slots=True)`` re-creates the
        # class, so the zero-arg form's ``__class__`` cell would still point
        # at the discarded pre-slots class object.
        super(Message, cls).__init_subclass__(**kwargs)
        cls.kind = cls.__name__

    def approx_size_bytes(self) -> int:
        """Rough wire-size proxy used by the byte counters.

        The simulator has no serialisation layer, so the length of the
        dataclass repr stands in; what matters for the per-kind byte
        metrics is the *relative* weight of option payloads vs. votes.
        The value is computed once per instance — callers only invoke it
        after the routing fields are stamped.
        """
        size = self._approx_size
        if size is None:
            size = self._approx_size = len(repr(self))
        return size
