"""Network partitions: temporarily unreachable data centers.

A partition drops (rather than delays) messages, modelling the "fail
unexpectedly" part of the paper's motivation.  Partitions are scheduled as
half-open windows, like latency degradations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.topology import Datacenter


@dataclass(frozen=True)
class PartitionWindow:
    """During ``[start_ms, end_ms)``, ``dc_name`` is cut off from everyone.

    If ``peer_name`` is given, only the (dc, peer) link is cut.
    """

    start_ms: float
    end_ms: float
    dc_name: str
    peer_name: Optional[str] = None

    def drops(self, now: float, src: Datacenter, dst: Datacenter) -> bool:
        if not (self.start_ms <= now < self.end_ms):
            return False
        names = {src.name, dst.name}
        if self.dc_name not in names:
            return False
        if self.peer_name is not None and self.peer_name not in names:
            return False
        return src.name != dst.name  # intra-DC traffic always survives


@dataclass(frozen=True)
class LossWindow:
    """During ``[start_ms, end_ms)``, inter-DC messages drop with ``rate``.

    If ``dc_name`` is given, only links touching that DC are lossy.
    Intra-DC traffic is never affected: a loss window models a flaky
    wide-area path, not a broken rack, and (deliberately) cannot hide a
    coordinator's decision from its *local* replica — which keeps the
    consistency checker's invariants decidable under loss campaigns.
    """

    start_ms: float
    end_ms: float
    rate: float
    dc_name: Optional[str] = None

    def applies(self, now: float, src: Datacenter, dst: Datacenter) -> bool:
        if not (self.start_ms <= now < self.end_ms):
            return False
        if src.name == dst.name:
            return False
        if self.dc_name is not None and self.dc_name not in (src.name, dst.name):
            return False
        return True


class PartitionManager:
    """Holds the partition schedule and answers "does this message die?"."""

    def __init__(self) -> None:
        self._windows: List[PartitionWindow] = []

    def add_window(self, window: PartitionWindow) -> None:
        self._windows.append(window)

    def clear(self) -> None:
        self._windows.clear()

    def drops(self, now: float, src: Datacenter, dst: Datacenter) -> bool:
        if not self._windows:  # most runs schedule no partitions at all
            return False
        return any(window.drops(now, src, dst) for window in self._windows)
