"""Message delivery between simulated nodes."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.latency import LatencyModel
from repro.net.messages import Message
from repro.net.partitions import LossWindow, PartitionManager
from repro.net.topology import Datacenter, Topology
from repro.sim.kernel import Simulator
from repro.sim.rng import derive_seed

try:  # the compiled quiet-path sender (optional; see repro.engine)
    from repro import _ckernel
except ImportError:  # pragma: no cover - toolchain-less checkout
    _ckernel = None


class NetworkNode:
    """Anything that can receive messages: storage node, coordinator, client.

    Subclasses override :meth:`receive`.  Nodes register with the
    :class:`Network` which assigns delivery.
    """

    def __init__(self, node_id: str, datacenter: Datacenter) -> None:
        self.node_id = node_id
        self.datacenter = datacenter
        self.network: Optional["Network"] = None

    def receive(self, message: Message) -> None:
        raise NotImplementedError

    def send(self, recipient_id: str, message: Message) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        self.network.send(self.node_id, recipient_id, message)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.node_id}@{self.datacenter.name}>"


class Network:
    """Routes messages between registered nodes with sampled latency.

    Message loss comes from two sources: a uniform ``loss_probability`` and
    the :class:`PartitionManager` schedule.  Lost messages vanish silently —
    exactly what a sender experiences in a real deployment; protocol layers
    must use timeouts.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        batch_delivery: bool = False,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.sim = sim
        self.topology = topology
        self.latency = latency if latency is not None else LatencyModel(topology)
        self.loss_probability = loss_probability
        self.partitions = PartitionManager()
        self._loss_windows: list = []
        self._nodes: Dict[str, NetworkNode] = {}
        self._rng = sim.rng.stream("network")
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Batched delivery (opt-in): latency jitter for every send of one
        # simulated instant is drawn in a single vectorized numpy call at
        # flush time.  Deterministic — the generator is seeded from the
        # sim seed — and backend-independent, but a *different* rng
        # discipline than per-send ``rng.gauss``, so batching is off by
        # default and zero-batch runs stay byte-identical to history.
        self.batch_delivery = bool(batch_delivery)
        self._batch: List[Tuple[str, Message, Datacenter, Datacenter]] = []
        self._batch_flush_pending = False
        self._batch_rng = None
        if self.batch_delivery:
            import numpy as np

            self._batch_rng = np.random.Generator(
                np.random.PCG64(derive_seed(sim.seed, "network.batch"))
            )
        # The compiled quiet-path sender: when the simulator kernel is
        # compiled and delivery is unbatched, bind the C fast path over
        # this instance's ``send``.  It handles only the fully-quiet case
        # (no metrics/tracer/partitions/loss) and delegates everything
        # else back to the python method — observable behaviour is
        # byte-identical either way.
        self._csender = None
        if (
            not self.batch_delivery
            and _ckernel is not None
            and isinstance(sim, _ckernel.SimulatorBase)
        ):
            self._csender = _ckernel.NetSender(self, type(self).send.__get__(self))
            self.send = self._csender  # instance attr shadows the method

    # ------------------------------------------------------------------
    def register(self, node: NetworkNode) -> NetworkNode:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        node.network = self
        return node

    def add_loss_window(self, window: LossWindow) -> None:
        """Schedule a timed burst of inter-DC message loss."""
        self._loss_windows.append(window)

    def node(self, node_id: str) -> NetworkNode:
        return self._nodes[node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # ------------------------------------------------------------------
    def send(self, sender_id: str, recipient_id: str, message: Message) -> None:
        """Send ``message``; it is delivered later (or dropped) by the kernel.

        The fully-disabled path (no metrics, no tracer, no partitions, no
        loss) allocates nothing beyond the delivery event itself.
        """
        sim = self.sim
        now = sim.now
        sender = self._nodes[sender_id]
        recipient = self._nodes[recipient_id]
        message.sender = sender_id
        message.recipient = recipient_id
        message.sent_at = now
        self.messages_sent += 1
        tracer = sim.tracer
        metrics = sim.metrics
        if metrics.enabled:
            kind = message.kind
            metrics.inc("net.messages_sent", kind=kind)
            metrics.inc("net.bytes_sent", message.approx_size_bytes(), kind=kind)

        if self.partitions.drops(now, sender.datacenter, recipient.datacenter):
            self.messages_dropped += 1
            if metrics.enabled:
                metrics.inc("net.messages_dropped", cause="partition")
            if tracer.enabled:
                tracer.emit(
                    now, "message", "drop",
                    kind=message.kind, src=sender_id, dst=recipient_id, cause="partition",
                )
            return
        loss = self.loss_probability
        if self._loss_windows:
            for window in self._loss_windows:
                if window.rate > loss and window.applies(
                    now, sender.datacenter, recipient.datacenter
                ):
                    loss = window.rate
        # A single rng draw per potentially-lossy send keeps the "network"
        # stream identical between a run with no windows and the historical
        # zero-loss fast path.
        if loss > 0 and self._rng.random() < loss:
            self.messages_dropped += 1
            if metrics.enabled:
                metrics.inc("net.messages_dropped", cause="loss")
            if tracer.enabled:
                tracer.emit(
                    now, "message", "drop",
                    kind=message.kind, src=sender_id, dst=recipient_id, cause="loss",
                )
            return

        if self._batch_rng is not None:
            # Defer the latency draw: every send of this instant is
            # flushed together with one vectorized jitter draw.
            self._batch.append(
                (recipient_id, message, sender.datacenter, recipient.datacenter)
            )
            if not self._batch_flush_pending:
                self._batch_flush_pending = True
                sim.call_soon(self._flush_batch)
            return

        delay = self.latency.sample_ms(
            sender.datacenter, recipient.datacenter, now, self._rng
        )
        if tracer.enabled:
            tracer.emit(
                now, "message", "send",
                kind=message.kind, src=sender_id, dst=recipient_id, delay_ms=delay,
            )
        sim.schedule(delay, self._deliver, recipient_id, message)

    def _flush_batch(self) -> None:
        """Deliver the current send burst with one vectorized jitter draw.

        Runs at the same simulated instant as the sends it drains (it is
        scheduled with ``call_soon`` by the first send of the instant), so
        delivery times are identical in distribution to per-send sampling;
        only the rng discipline differs (numpy standard normals instead of
        ``Random.gauss``).
        """
        burst, self._batch = self._batch, []
        self._batch_flush_pending = False
        if not burst:
            return
        sim = self.sim
        now = sim.now
        tracer = sim.tracer
        draws = self._batch_rng.standard_normal(len(burst))
        latency = self.latency
        for i, (recipient_id, message, src_dc, dst_dc) in enumerate(burst):
            delay = latency.sample_with_normal(src_dc, dst_dc, now, draws[i])
            if tracer.enabled:
                tracer.emit(
                    now, "message", "send",
                    kind=message.kind, src=message.sender, dst=recipient_id,
                    delay_ms=delay,
                )
            sim.schedule(delay, self._deliver, recipient_id, message)

    def _deliver(self, recipient_id: str, message: Message) -> None:
        sim = self.sim
        node = self._nodes.get(recipient_id)
        if node is None:  # node may have been torn down mid-flight
            self.messages_dropped += 1
            metrics = sim.metrics
            if metrics.enabled:
                metrics.inc("net.messages_dropped", cause="gone")
            tracer = sim.tracer
            if tracer.enabled:
                tracer.emit(
                    sim.now, "message", "drop",
                    kind=message.kind, src=message.sender, dst=recipient_id, cause="gone",
                )
            return
        self.messages_delivered += 1
        metrics = sim.metrics
        if metrics.enabled:
            kind = message.kind
            metrics.inc("net.messages_delivered", kind=kind)
            metrics.observe("net.flight_ms", sim.now - message.sent_at, kind=kind)
        tracer = sim.tracer
        if tracer.enabled:
            # One completed span per delivered message: its wide-area flight.
            tracer.span(
                message.sent_at, sim.now, "message", message.kind,
                track=f"net:{recipient_id}", src=message.sender, dst=recipient_id,
            )
        node.receive(message)
