"""Data-center topology and the inter-DC round-trip-time matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Datacenter:
    """A named data center (EC2 region in the paper's deployment)."""

    name: str
    index: int

    def __str__(self) -> str:
        return self.name


class Topology:
    """A set of data centers plus the symmetric RTT matrix between them.

    RTTs are in milliseconds.  ``intra_dc_rtt_ms`` is the round-trip between
    two machines inside the same data center.
    """

    def __init__(
        self,
        names: Sequence[str],
        rtt_ms: Sequence[Sequence[float]],
        intra_dc_rtt_ms: float = 1.0,
    ) -> None:
        if len(rtt_ms) != len(names):
            raise ValueError("RTT matrix must be square over the data centers")
        for i, row in enumerate(rtt_ms):
            if len(row) != len(names):
                raise ValueError("RTT matrix must be square over the data centers")
            if row[i] != 0:
                raise ValueError(f"diagonal of RTT matrix must be 0, got {row[i]} at {i}")
        for i in range(len(names)):
            for j in range(len(names)):
                if rtt_ms[i][j] != rtt_ms[j][i]:
                    raise ValueError("RTT matrix must be symmetric")
                if i != j and rtt_ms[i][j] <= 0:
                    raise ValueError("inter-DC RTTs must be positive")
        if intra_dc_rtt_ms <= 0:
            raise ValueError("intra_dc_rtt_ms must be positive")
        self.datacenters: List[Datacenter] = [
            Datacenter(name, index) for index, name in enumerate(names)
        ]
        self._by_name: Dict[str, Datacenter] = {dc.name: dc for dc in self.datacenters}
        self._rtt = [list(row) for row in rtt_ms]
        self.intra_dc_rtt_ms = intra_dc_rtt_ms

    def __len__(self) -> int:
        return len(self.datacenters)

    def __iter__(self):
        return iter(self.datacenters)

    def datacenter(self, name: str) -> Datacenter:
        return self._by_name[name]

    def rtt_ms(self, a: Datacenter, b: Datacenter) -> float:
        """Base round-trip time between (machines in) two data centers."""
        if a.index == b.index:
            return self.intra_dc_rtt_ms
        return self._rtt[a.index][b.index]

    def one_way_ms(self, a: Datacenter, b: Datacenter) -> float:
        """Base one-way latency: half the round trip."""
        return self.rtt_ms(a, b) / 2.0

    def sorted_peers(self, origin: Datacenter) -> List[Tuple[Datacenter, float]]:
        """All data centers (including ``origin``) sorted by RTT from it."""
        pairs = [(dc, self.rtt_ms(origin, dc)) for dc in self.datacenters]
        pairs.sort(key=lambda pair: (pair[1], pair[0].index))
        return pairs

    def quorum_rtt_ms(self, origin: Datacenter, quorum_size: int) -> float:
        """RTT to the ``quorum_size``-th closest data center from ``origin``.

        This is the floor on a Paxos round started at ``origin`` that must
        hear from ``quorum_size`` replicas (one per DC), and the yardstick
        the latency experiments compare measured commit times against.
        """
        peers = self.sorted_peers(origin)
        if quorum_size < 1 or quorum_size > len(peers):
            raise ValueError(f"quorum_size {quorum_size} out of range 1..{len(peers)}")
        return peers[quorum_size - 1][1]


#: RTT matrix (ms) shaped like published inter-region EC2 measurements for the
#: five regions used in PLANET's evaluation.  Order: us_west, us_east,
#: ireland, singapore, tokyo.
_EC2_NAMES = ("us_west", "us_east", "ireland", "singapore", "tokyo")
_EC2_RTT = (
    (0.0, 75.0, 155.0, 175.0, 115.0),
    (75.0, 0.0, 80.0, 235.0, 165.0),
    (155.0, 80.0, 0.0, 290.0, 265.0),
    (175.0, 235.0, 290.0, 0.0, 75.0),
    (115.0, 165.0, 265.0, 75.0, 0.0),
)

EC2_FIVE_DC = Topology(_EC2_NAMES, _EC2_RTT, intra_dc_rtt_ms=1.0)


def make_synthetic_topology(
    n_datacenters: int,
    seed: int = 0,
    base_rtt_ms: float = 60.0,
    step_rtt_ms: float = 35.0,
    max_rtt_ms: float = 400.0,
) -> Topology:
    """A deterministic synthetic *expansion* topology with ``n_datacenters``.

    Models how deployments actually grow: each new region is farther from
    the original core (dc0) than the last, so RTT(i, j) grows roughly
    linearly in ``|i - j|`` (plus seeded noise, clamped at ``max_rtt_ms``).
    Used by the scale-out sensitivity study (S1), where the claim under test
    is that larger quorums reach farther regions.
    """
    import random as _random

    if n_datacenters < 1:
        raise ValueError("n_datacenters must be >= 1")
    rng = _random.Random(seed)
    names = [f"dc{i}" for i in range(n_datacenters)]
    rtt = [[0.0] * n_datacenters for _ in range(n_datacenters)]
    for i in range(n_datacenters):
        for j in range(i + 1, n_datacenters):
            base = base_rtt_ms + step_rtt_ms * (abs(i - j) - 1)
            value = min(max_rtt_ms, max(base_rtt_ms * 0.5, base * rng.uniform(0.9, 1.1)))
            rtt[i][j] = rtt[j][i] = round(value, 1)
    return Topology(names, rtt, intra_dc_rtt_ms=1.0)
