"""Per-message latency sampling, with injectable degradation windows.

The base one-way latency between two data centers is half the topology RTT.
Each message additionally draws multiplicative lognormal jitter, so the
distribution has the heavy right tail that makes commit latency in wide-area
systems *unpredictable* — the very problem PLANET addresses.

Degradation windows model the paper's "load spikes / communication cost"
scenarios: during ``[start_ms, end_ms)`` messages on the selected links are
slowed by a multiplier and/or an additive delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import List, Optional

from repro.net.topology import Datacenter, Topology


@dataclass(frozen=True)
class DegradationWindow:
    """A latency disturbance active during ``[start_ms, end_ms)``.

    ``src_name``/``dst_name`` of ``None`` match any data center; a window with
    both None degrades every link (a global event such as coordinator-side
    overload).  Matching is direction-insensitive: a window on (A, B) also
    slows (B, A).
    """

    start_ms: float
    end_ms: float
    multiplier: float = 1.0
    extra_ms: float = 0.0
    src_name: Optional[str] = None
    dst_name: Optional[str] = None

    def active(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms

    def matches(self, src: Datacenter, dst: Datacenter) -> bool:
        names = {src.name, dst.name}
        for endpoint in (self.src_name, self.dst_name):
            if endpoint is not None and endpoint not in names:
                return False
        return True


class LatencyModel:
    """Samples one-way message latencies.

    ``jitter_sigma`` is the sigma of the lognormal multiplier (mean-one), so
    ``0`` gives deterministic latencies and ~0.2 gives a realistic wide-area
    tail.  ``min_latency_ms`` floors every sample (a message is never faster
    than the speed of light on the link).
    """

    def __init__(
        self,
        topology: Topology,
        jitter_sigma: float = 0.2,
        min_latency_ms: float = 0.1,
    ) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        self.topology = topology
        self.jitter_sigma = jitter_sigma
        self.min_latency_ms = min_latency_ms
        self._windows: List[DegradationWindow] = []
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); choose mu so mean == 1.
        self._jitter_mu = -0.5 * jitter_sigma * jitter_sigma
        # Base one-way latency per (src, dst) index pair.  The topology is
        # immutable for the model's lifetime, so the division in
        # ``one_way_ms`` needs to happen once per link, not once per message.
        self._base_one_way: dict = {}

    # ------------------------------------------------------------------
    def add_window(self, window: DegradationWindow) -> None:
        """Register a degradation window (spike) for later simulated times."""
        self._windows.append(window)

    def clear_windows(self) -> None:
        self._windows.clear()

    def active_windows(self, now: float, src: Datacenter, dst: Datacenter):
        return [w for w in self._windows if w.active(now) and w.matches(src, dst)]

    # ------------------------------------------------------------------
    def sample_ms(self, src: Datacenter, dst: Datacenter, now: float, rng: Random) -> float:
        """One-way latency for a message sent now from ``src`` to ``dst``."""
        key = (src.index, dst.index)
        base = self._base_one_way.get(key)
        if base is None:
            base = self._base_one_way[key] = self.topology.one_way_ms(src, dst)
        if self.jitter_sigma > 0:
            base *= math.exp(rng.gauss(self._jitter_mu, self.jitter_sigma))
        if self._windows:
            for window in self._windows:
                if window.active(now) and window.matches(src, dst):
                    base = base * window.multiplier + window.extra_ms
        return max(base, self.min_latency_ms)

    def sample_with_normal(
        self, src: Datacenter, dst: Datacenter, now: float, z: float
    ) -> float:
        """One-way latency from a pre-drawn standard normal ``z``.

        The batched-delivery path draws its normals vectorized (numpy)
        and maps each through the same mean-one lognormal as
        :meth:`sample_ms`; windows and the floor apply identically.
        """
        key = (src.index, dst.index)
        base = self._base_one_way.get(key)
        if base is None:
            base = self._base_one_way[key] = self.topology.one_way_ms(src, dst)
        if self.jitter_sigma > 0:
            base *= math.exp(self._jitter_mu + self.jitter_sigma * z)
        if self._windows:
            for window in self._windows:
                if window.active(now) and window.matches(src, dst):
                    base = base * window.multiplier + window.extra_ms
        return max(base, self.min_latency_ms)

    def quantile_ms(self, src: Datacenter, dst: Datacenter, q: float) -> float:
        """Analytic ``q``-quantile of the undisturbed one-way latency.

        Used by the commit-likelihood predictor to reason about how long an
        outstanding response should take without having to sample.
        """
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        base = self.topology.one_way_ms(src, dst)
        if self.jitter_sigma == 0:
            return max(base, self.min_latency_ms)
        z = _norm_ppf(q)
        return max(base * math.exp(self._jitter_mu + self.jitter_sigma * z), self.min_latency_ms)

    def mean_ms(self, src: Datacenter, dst: Datacenter) -> float:
        """Mean undisturbed one-way latency (the jitter is mean-one)."""
        return max(self.topology.one_way_ms(src, dst), self.min_latency_ms)


def _norm_ppf(q: float) -> float:
    """Standard normal inverse CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); avoids importing scipy for one function.
    """
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    u = q - 0.5
    t = u * u
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / (
        ((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0
    )
