"""Wide-area network model: data-center topology, latency, message delivery.

The default topology mirrors the five Amazon EC2 regions PLANET's evaluation
deployed across (US West, US East, Ireland, Singapore, Tokyo), with a
round-trip-time matrix shaped like published EC2 inter-region measurements.
Per-message one-way latency is sampled from a lognormal distribution around
half the RTT, and experiments can inject latency spikes or degradation
windows on individual links to reproduce the paper's "unpredictable
environment" conditions.
"""

from repro.net.latency import DegradationWindow, LatencyModel
from repro.net.messages import Message
from repro.net.network import Network, NetworkNode
from repro.net.partitions import PartitionManager
from repro.net.topology import EC2_FIVE_DC, Datacenter, Topology

__all__ = [
    "Datacenter",
    "Topology",
    "EC2_FIVE_DC",
    "LatencyModel",
    "DegradationWindow",
    "Message",
    "Network",
    "NetworkNode",
    "PartitionManager",
]
