"""A PLANET session: one application's connection to a coordinator.

The session owns the per-client PLANET machinery — conflict statistics,
likelihood model, admission controller, metrics — and drives transactions
through: admission check, engine submission with a
:class:`~repro.core.speculation.SpeculationManager` attached, and bookkeeping
at completion.

The session works against either engine.  The baseline 2PC coordinator has
no ``progress()`` seam, so likelihood evaluation (and therefore guessing)
silently disables itself there — the session still measures latencies and
outcomes, which is exactly what the baseline comparisons need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.admission import AdmissionAction, AdmissionController, AdmissionPolicy
from repro.core.conflicts import ConflictTracker
from repro.core.likelihood import (
    CommitLikelihoodModel,
    EmpiricalLikelihoodModel,
    LikelihoodConfig,
)
from repro.core.stages import TxStage
from repro.core.speculation import SpeculationManager
from repro.core.transaction import PlanetTransaction
from repro.ops import AbortReason, Decision, Outcome, validate_isolation
from repro.paxos.ballot import classic_quorum, fast_quorum
from repro.sim.process import Waiter
from repro.stats.calibration import CalibrationBins
from repro.stats.metrics import MetricsRegistry


@dataclass
class PlanetConfig:
    """Session-level PLANET configuration."""

    likelihood: LikelihoodConfig = field(default_factory=LikelihoodConfig)
    admission_policy: AdmissionPolicy = AdmissionPolicy.NONE
    admission_threshold: float = 0.3
    random_reject_rate: float = 0.0
    admission_delay_ms: float = 100.0
    admission_max_delays: int = 3
    # Session guarantee: reads observe this session's own committed
    # exclusive writes (the engine re-reads until the local replica caught
    # up).  Commutative deltas are excluded — their assigned version is not
    # knowable at the session — and documented as eventually visible.
    read_your_writes: bool = False
    # Default isolation contract for this session's transactions (see
    # repro.ops.ISOLATION_LEVELS); transactions override it per-tx with
    # PlanetTransaction.with_isolation.  "serializable" is byte-for-byte
    # the engine's historical behaviour.
    isolation: str = "serializable"
    default_guess_threshold: Optional[float] = None
    default_timeout_ms: Optional[float] = None
    use_empirical_model: bool = False

    # -- uniform config API (see repro.harness.overrides) ---------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-encodable snapshot of every field (nested configs recursed)."""
        from repro.harness.overrides import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_overrides(cls, overrides, base: Optional["PlanetConfig"] = None) -> "PlanetConfig":
        """Build a config from string ``key=value`` overrides (CLI ``--set``)."""
        from repro.harness.overrides import config_from_overrides

        return config_from_overrides(base if base is not None else cls(), overrides)

    def with_overrides(self, overrides) -> "PlanetConfig":
        """A copy of this config with string overrides applied."""
        from repro.harness.overrides import config_from_overrides

        return config_from_overrides(self, overrides)


class PlanetSession:
    def __init__(
        self,
        cluster,
        dc_name: str,
        config: Optional[PlanetConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        conflicts: Optional[ConflictTracker] = None,
    ) -> None:
        self.cluster = cluster
        self.dc_name = dc_name
        self.config = config if config is not None else PlanetConfig()
        self.sim = cluster.sim
        self.coordinator = cluster.coordinator(dc_name)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Conflict statistics may be shared across sessions (all app servers
        # in a DC — or in the experiment, the whole deployment — feed one
        # tracker, as the paper's predictor aggregates system-wide stats).
        self.conflicts = conflicts if conflicts is not None else ConflictTracker()
        self.likelihood_model = CommitLikelihoodModel(
            conflicts=self.conflicts,
            latency=cluster.latency,
            coordinator_dc=self.coordinator.datacenter,
            config=self.config.likelihood,
        )
        self.empirical_model: Optional[EmpiricalLikelihoodModel] = (
            EmpiricalLikelihoodModel() if self.config.use_empirical_model else None
        )
        self.admission = AdmissionController(
            policy=self.config.admission_policy,
            threshold=self.config.admission_threshold,
            random_reject_rate=self.config.random_reject_rate,
            delay_ms=self.config.admission_delay_ms,
            max_delays=self.config.admission_max_delays,
            rng=self.sim.rng.stream(f"admission:{dc_name}"),
        )
        # Stable per-cluster session identity, recorded on every history
        # event so the offline checker can verify per-session guarantees.
        next_session_id = getattr(cluster, "next_session_id", None)
        self.session_id = (
            next_session_id(dc_name) if next_session_id is not None else f"{dc_name}/s0"
        )
        self.calibration_first_vote = CalibrationBins()
        self.calibration_at_guess = CalibrationBins()
        self.finished: List[PlanetTransaction] = []
        # Per-key committed-version watermarks for read-your-writes.
        self._write_watermarks: Dict[str, int] = {}
        # Per-key highest version this session has read — the monotonic
        # floor for monotonic-session transactions.  Only maintained when
        # such transactions run, so serializable sessions are untouched.
        self._read_watermarks: Dict[str, int] = {}
        validate_isolation(self.config.isolation)
        n = len(cluster.replica_ids)
        self.record_quorum = (
            fast_quorum(n) if getattr(cluster.config, "use_fast_path", True) else classic_quorum(n)
        )
        self._engine_has_progress = hasattr(self.coordinator, "progress")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transaction(self) -> PlanetTransaction:
        tx = PlanetTransaction()
        if self.config.default_timeout_ms is not None:
            tx.timeout_ms = self.config.default_timeout_ms
        if self.config.default_guess_threshold is not None:
            tx.guess_threshold = self.config.default_guess_threshold
        return tx

    def submit(self, tx: PlanetTransaction) -> PlanetTransaction:
        """Run the transaction; callbacks fire as the simulation advances."""
        tx.waiter = Waiter()
        self.metrics.increment("submitted")
        gm = self.sim.metrics
        if gm.enabled:
            gm.inc("planet.submitted", dc=self.dc_name)
        tracer = self.sim.tracer
        if tracer.enabled:
            # ``wkeys`` is the declared write set (comma-joined, sorted).
            # The checker needs it for transactions that never reach a
            # decision record — their writes may have installed invisibly
            # (orphan recovery), so their keys are excused from strict
            # version-chain checking.
            fields = dict(
                txid=tx.txid, session=self.session_id,
                ryw=self.config.read_your_writes,
                reads=len(tx.reads), writes=len(tx.writes),
                wkeys=",".join(sorted(op.key for op in tx.writes)),
            )
            # The declared level rides on the begin record for the checker
            # and predictor.  Serializable is implied when absent, which
            # keeps pre-isolation history digests byte-identical.
            isolation = self.effective_isolation(tx)
            if isolation != "serializable":
                fields["iso"] = isolation
            tracer.emit(self.sim.now, "history", "begin", **fields)
        self._attempt_admission(tx, previous_delays=0)
        return tx

    def effective_isolation(self, tx: PlanetTransaction) -> str:
        """The isolation contract ``tx`` runs under (override or default)."""
        return tx.isolation if tx.isolation is not None else self.config.isolation

    def _attempt_admission(self, tx: PlanetTransaction, previous_delays: int) -> None:
        prior = self._prior_likelihood(tx)
        decision = self.admission.decide(prior, previous_delays=previous_delays)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                self.sim.now, "admission", decision.action.value,
                txid=tx.txid, prior=prior, policy=decision.policy.value,
                attempt=previous_delays,
            )
        if decision.action is AdmissionAction.REJECT:
            self._reject(tx)
            return
        if decision.action is AdmissionAction.DELAY:
            # Hold the transaction back; hot records cool as their in-flight
            # writers decide, so the prior improves on the next attempt.
            self.metrics.increment("delayed_admission")
            gm = self.sim.metrics
            if gm.enabled:
                gm.inc("planet.admission_delays", dc=self.dc_name)
            self.sim.schedule(
                decision.delay_ms, self._attempt_admission, tx, previous_delays + 1
            )
            return
        manager = SpeculationManager(tx, self)
        tx.transition(TxStage.READING, self.sim.now)
        manager.note_stage(TxStage.READING, self.sim.now)
        for op in tx.writes:
            self.conflicts.register_inflight(op.key)
        request = tx.to_request()
        request.isolation = self.effective_isolation(tx)
        if self.config.read_your_writes and self._write_watermarks:
            touched = set(request.reads) | set(request.write_keys)
            request.min_versions = {
                key: self._write_watermarks[key]
                for key in touched
                if key in self._write_watermarks
            }
        if request.isolation == "monotonic-session" and self._read_watermarks:
            # Session guarantee: this transaction's reads must not go
            # backwards relative to what the session has already read.
            # The engine's min_versions re-read loop waits for the local
            # replica to catch up to the floor.
            for key in request.reads:
                floor = self._read_watermarks.get(key)
                if floor is not None and floor > request.min_versions.get(key, 0):
                    request.min_versions[key] = floor
        self.coordinator.execute(request, manager)

    def abort(self, tx: PlanetTransaction) -> bool:
        """Application-initiated abort of an in-flight transaction.

        Returns True if the abort took effect (the ``on_abort`` — or, for a
        guessed transaction, ``on_wrong_guess`` — callback fires through the
        normal decision path); False when the transaction already decided.
        """
        if tx.decision is not None or tx.stage.terminal:
            return False
        return self.coordinator.abort(tx.txid)

    # ------------------------------------------------------------------
    # Hooks used by the speculation manager
    # ------------------------------------------------------------------
    def note_read_versions(self, request) -> None:
        """Advance the session's monotonic read floors (monotonic-session).

        Called when a transaction's read phase completes; a no-op for every
        other isolation level so serializable sessions stay byte-identical
        to their pre-isolation behaviour.
        """
        if request.isolation != "monotonic-session":
            return
        for key, version in request.read_versions.items():
            if version > self._read_watermarks.get(key, -1):
                self._read_watermarks[key] = version

    def evaluate_likelihood(self, tx: PlanetTransaction, now: float) -> Optional[float]:
        if not self._engine_has_progress:
            return None
        snapshot = self.coordinator.progress(tx.txid)
        if snapshot is None:
            return None
        if self.empirical_model is not None:
            return self.empirical_model.likelihood(snapshot, now)
        return self.likelihood_model.likelihood(snapshot, now)

    def predict_decision_time(self, tx: PlanetTransaction) -> Optional[float]:
        """Expected absolute simulated time of the transaction's decision.

        None when the transaction is not in its voting phase (not yet
        submitted, already decided, or running on an engine without the
        progress seam).
        """
        if not self._engine_has_progress:
            return None
        snapshot = self.coordinator.progress(tx.txid)
        if snapshot is None:
            return None
        return self.likelihood_model.expected_decision_time(snapshot, self.sim.now)

    def finish_transaction(self, tx: PlanetTransaction, manager: SpeculationManager) -> None:
        for op in tx.writes:
            self.conflicts.unregister_inflight(op.key)
        if self.config.read_your_writes and tx.committed:
            from repro.ops import WriteOp

            for op in tx.writes:
                if isinstance(op, WriteOp) and op.read_version is not None:
                    watermark = op.read_version + 1
                    if watermark > self._write_watermarks.get(op.key, 0):
                        self._write_watermarks[op.key] = watermark
        self.finished.append(tx)
        self._record_metrics(tx)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prior_likelihood(self, tx: PlanetTransaction) -> float:
        keys = [op.key for op in tx.writes]
        if self.empirical_model is not None:
            return self.empirical_model.prior_likelihood(keys)
        return self.likelihood_model.prior_likelihood(keys)

    def _reject(self, tx: PlanetTransaction) -> None:
        now = self.sim.now
        tx.transition(TxStage.REJECTED, now)
        tx.decision = Decision(
            txid=tx.txid, outcome=Outcome.ABORTED, reason=AbortReason.ADMISSION, decided_at=now
        )
        self.metrics.increment("rejected_admission")
        gm = self.sim.metrics
        if gm.enabled:
            gm.inc("planet.admission_rejections", dc=self.dc_name)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                now, "history", "abort",
                txid=tx.txid, session=self.session_id,
                reason=AbortReason.ADMISSION.value,
            )
        self.finished.append(tx)
        tx.callbacks.fire_abort(tx)
        tx.waiter.wake(tx.decision)

    def _record_metrics(self, tx: PlanetTransaction) -> None:
        metrics = self.metrics
        gm = self.sim.metrics
        if tx.committed:
            metrics.increment("committed")
            if gm.enabled:
                gm.inc("planet.committed", dc=self.dc_name)
            latency = tx.commit_latency_ms()
            if latency is not None:
                metrics.observe_latency("commit_latency_ms", latency)
                if gm.enabled:
                    gm.observe("planet.commit_latency_ms", latency, dc=self.dc_name)
        else:
            metrics.increment("aborted")
            metrics.increment(f"aborted_{tx.abort_reason.value}")
            if gm.enabled:
                reason = tx.abort_reason.value if tx.abort_reason is not None else "unknown"
                gm.inc("planet.aborted", dc=self.dc_name, reason=reason)
        if tx.was_guessed:
            metrics.increment("guessed")
            if gm.enabled:
                gm.inc("planet.guesses", dc=self.dc_name)
            guess_latency = tx.guess_latency_ms()
            if guess_latency is not None:
                metrics.observe_latency("guess_latency_ms", guess_latency)
            if not tx.committed:
                metrics.increment("wrong_guesses")
                if gm.enabled:
                    # Each wrong guess owes the application an apology
                    # (the paper's "guesses, apologies" contract).
                    gm.inc("planet.apologies", dc=self.dc_name)
            if tx.predicted_at_guess is not None:
                self.calibration_at_guess.update(
                    min(tx.predicted_at_guess, 1.0), tx.committed
                )
        if tx.predicted_at_first_vote is not None:
            predicted = min(tx.predicted_at_first_vote, 1.0)
            self.calibration_first_vote.update(predicted, tx.committed)
            if gm.enabled:
                # Decile buckets so the calibration curve can be read off a
                # metrics snapshot without replaying the run.
                bucket = min(int(predicted * 10), 9)
                gm.inc(
                    "planet.likelihood_bucket",
                    bucket=f"{bucket / 10:.1f}",
                    committed=str(tx.committed).lower(),
                )
