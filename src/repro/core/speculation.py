"""Speculative commit management: the bridge between engine and application.

One :class:`SpeculationManager` rides along with each submitted transaction
as its :class:`~repro.ops.TxEvents` hook object.  On every replica vote it
re-evaluates the commit likelihood, feeds the progress callback, and fires
the *guess* — the speculative commit — the first time the likelihood crosses
the application's threshold.  At decision time it reconciles the guess
(commit: the guess was right; abort: fire the compensation callback),
updates conflict statistics, and reports the finished transaction back to
the session.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.stages import SPANNED_STAGES, TxStage
from repro.core.transaction import PlanetTransaction
from repro.ops import Decision, TxEvents, TxRequest, WriteOp


class SpeculationManager(TxEvents):
    def __init__(self, tx: PlanetTransaction, session) -> None:
        self.tx = tx
        self.session = session
        # Per-key (accepts, rejects) counts observed through on_vote, kept so
        # conflict statistics survive the coordinator forgetting the tx.
        self.vote_counts: Dict[str, List[int]] = {}
        # Vote-state history per key, consumed by the empirical model.
        self.state_history: Dict[str, List[Tuple[int, int]]] = {}
        self._stage_span = None  # open obs span for the current stage

    # ------------------------------------------------------------------
    # Observability: one span per non-terminal stage, on the tx's track
    # ------------------------------------------------------------------
    def note_stage(self, stage: TxStage, now: float) -> None:
        tracer = self.session.sim.tracer
        if not tracer.enabled:
            return
        tracer.end(self._stage_span, now)
        self._stage_span = (
            tracer.begin(now, "stage", stage.value, track=self.tx.txid)
            if stage in SPANNED_STAGES
            else None
        )

    # ------------------------------------------------------------------
    # TxEvents
    # ------------------------------------------------------------------
    def on_reads_complete(self, request: TxRequest, now: float) -> None:
        self.tx.read_results.update(request.read_results)
        self.session.note_read_versions(request)
        tracer = self.session.sim.tracer
        if tracer.enabled:
            # One client-visible read per key, with the version actually
            # served (engines without version tracking report -1; the
            # checker skips those).  Sorted for a deterministic stream.
            session_id = getattr(self.session, "session_id", "")
            versions = request.read_versions
            for key in sorted(request.read_results):
                tracer.emit(
                    now, "history", "read",
                    txid=self.tx.txid, session=session_id,
                    key=key, version=versions.get(key, -1),
                )

    def on_commit_started(self, request: TxRequest, now: float) -> None:
        self.tx.transition(TxStage.PENDING, now)
        self.note_stage(TxStage.PENDING, now)

    def on_vote(self, request: TxRequest, key: str, accepted: bool, now: float) -> None:
        counts = self.vote_counts.setdefault(key, [0, 0])
        history = self.state_history.setdefault(key, [])
        history.append((counts[0], counts[1]))
        counts[0 if accepted else 1] += 1

        likelihood = self.session.evaluate_likelihood(self.tx, now)
        if likelihood is None:
            return
        self.tx.likelihood_trace.append((now, likelihood))
        if self.tx.predicted_at_first_vote is None:
            self.tx.predicted_at_first_vote = likelihood
        self.tx.callbacks.fire_progress(self.tx, likelihood)

        threshold = self.tx.guess_threshold
        if (
            threshold is not None
            and self.tx.stage is TxStage.PENDING
            and likelihood >= threshold
        ):
            self.tx.transition(TxStage.GUESSED, now)
            self.note_stage(TxStage.GUESSED, now)
            self.tx.predicted_at_guess = likelihood
            tracer = self.session.sim.tracer
            if tracer.enabled:
                tracer.emit(
                    now, "stage", "guess", txid=self.tx.txid, likelihood=likelihood
                )
                tracer.emit(
                    now, "history", "guess",
                    txid=self.tx.txid,
                    session=getattr(self.session, "session_id", ""),
                    likelihood=likelihood,
                )
            self.tx.callbacks.fire_guess(self.tx, likelihood)

    def on_decided(self, request: TxRequest, decision: Decision) -> None:
        tx = self.tx
        tx.decision = decision
        now = decision.decided_at
        was_guessed = tx.stage is TxStage.GUESSED
        if decision.committed:
            tx.transition(TxStage.COMMITTED, now)
        else:
            tx.transition(TxStage.ABORTED, now)
        self.note_stage(tx.stage, now)
        tracer = self.session.sim.tracer
        if tracer.enabled:
            # History ordering contract: a committed transaction's writes
            # precede its commit record, and both precede anything a commit
            # callback does (session bookkeeping runs before callbacks, so
            # a follow-up transaction's begin lands after this commit).
            session_id = getattr(self.session, "session_id", "")
            if decision.committed:
                for op in tx.writes:
                    if isinstance(op, WriteOp):
                        tracer.emit(
                            now, "history", "write",
                            txid=tx.txid, session=session_id, key=op.key,
                            kind="w",
                            read_version=(
                                -1 if op.read_version is None else op.read_version
                            ),
                        )
                    else:
                        tracer.emit(
                            now, "history", "write",
                            txid=tx.txid, session=session_id, key=op.key,
                            kind="delta", delta=op.delta, floor=op.floor,
                        )
                tracer.emit(
                    now, "history", "commit", txid=tx.txid, session=session_id
                )
            else:
                tracer.emit(
                    now, "history", "abort",
                    txid=tx.txid, session=session_id, reason=decision.reason.value,
                )
                if was_guessed:
                    # The wrong-guess compensation is the paper's apology;
                    # the checker holds it to exactly-once per wrong guess.
                    tracer.emit(
                        now, "history", "apology", txid=tx.txid, session=session_id
                    )
        # Session bookkeeping (conflict stats, read-your-writes watermarks,
        # metrics) runs BEFORE user callbacks: a callback that immediately
        # issues a follow-up transaction must observe this one's effects.
        self._update_statistics(decision)
        self.session.finish_transaction(tx, self)
        if decision.committed:
            tx.callbacks.fire_commit(tx)
        elif was_guessed:
            tx.callbacks.fire_wrong_guess(tx)
        else:
            tx.callbacks.fire_abort(tx)
        if tx.waiter is not None and not tx.waiter.woken:
            tx.waiter.wake(decision)

    # ------------------------------------------------------------------
    def _update_statistics(self, decision: Decision) -> None:
        conflicts = self.session.conflicts
        quorum = self.session.record_quorum
        n = len(self.session.cluster.replica_ids)
        for key, (accepts, rejects) in self.vote_counts.items():
            # Label the record's experience by its *decided* fate: chosen
            # (quorum reached) or doomed (quorum impossible).  A record left
            # ambiguous at decision time — votes stop arriving once the
            # transaction decides — teaches us nothing and is skipped.
            if accepts >= quorum:
                conflicts.observe_outcome(key, conflicted=False)
            elif rejects > n - quorum:
                conflicts.observe_outcome(key, conflicted=True)
        empirical = self.session.empirical_model
        if empirical is not None:
            for key, history in self.state_history.items():
                accepts, rejects = self.vote_counts[key]
                quorum = self.session.record_quorum
                chosen = accepts >= quorum
                for state in history:
                    empirical.observe(state[0], state[1], chosen)
