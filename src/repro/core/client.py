"""The public client facade.

:class:`PlanetClient` is what the examples and workloads use::

    from repro import Cluster, ClusterConfig, PlanetClient

    cluster = Cluster(ClusterConfig(seed=7))
    client = PlanetClient(cluster, "us_west")

    txn = (client.transaction()
           .read("balance:alice")
           .increment("stock:novel", -1)
           .write("order:1", {"item": "novel"})
           .with_timeout(800.0)
           .with_guess_threshold(0.95)
           .on_guess(lambda tx, p: print(f"confirm at p={p:.3f}"))
           .on_wrong_guess(lambda tx: print("apologise"))
           .on_commit(lambda tx: print("durable")))
    client.submit(txn)
    cluster.run()
"""

from __future__ import annotations

from typing import Optional

from repro.core.session import PlanetConfig, PlanetSession
from repro.core.transaction import PlanetTransaction
from repro.stats.metrics import MetricsRegistry


class PlanetClient:
    """A thin, application-facing wrapper around a :class:`PlanetSession`.

    With ``failover=True`` the client notices a crashed home coordinator at
    submission time and re-binds to the nearest healthy data center
    (statistics and metrics carry over), so an app-server failure costs its
    clients one reconnect, not their service.
    """

    def __init__(
        self,
        cluster,
        dc_name: str,
        config: Optional[PlanetConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        session: Optional[PlanetSession] = None,
        failover: bool = False,
    ) -> None:
        self.home_dc = dc_name
        self.failover = failover
        self.failovers = 0
        self.session = session if session is not None else PlanetSession(
            cluster, dc_name, config=config, metrics=metrics
        )
        self._config = config

    @property
    def cluster(self):
        return self.session.cluster

    @property
    def metrics(self) -> MetricsRegistry:
        return self.session.metrics

    @property
    def dc_name(self) -> str:
        return self.session.dc_name

    def transaction(self) -> PlanetTransaction:
        return self.session.transaction()

    def _coordinator_healthy(self) -> bool:
        return not getattr(self.session.coordinator, "crashed", False)

    def _fail_over(self) -> None:
        """Re-bind to the nearest data center with a healthy coordinator."""
        cluster = self.cluster
        home = cluster.topology.datacenter(self.home_dc)
        for dc, _rtt in cluster.topology.sorted_peers(home):
            coordinator = cluster.coordinator(dc.name)
            if not getattr(coordinator, "crashed", False):
                self.session = PlanetSession(
                    cluster,
                    dc.name,
                    config=self._config,
                    metrics=self.session.metrics,
                    conflicts=self.session.conflicts,
                )
                self.failovers += 1
                return
        raise RuntimeError("no healthy coordinator left to fail over to")

    def submit(self, tx: PlanetTransaction) -> PlanetTransaction:
        if self.failover and not self._coordinator_healthy():
            self._fail_over()
        return self.session.submit(tx)

    def execute(self, tx: PlanetTransaction, run: bool = True) -> PlanetTransaction:
        """Submit and, by default, drive the simulation until it decides."""
        self.submit(tx)
        if run:
            while tx.decision is None and self.cluster.sim.step():
                pass
        return tx
