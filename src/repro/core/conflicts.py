"""Per-record conflict statistics feeding the likelihood model.

Every decided transaction yields one observation per written record: "did
this record's option encounter a conflict (any replica rejected it)?".  The
tracker keeps an EWMA rate per record — recent behaviour dominates, so a
record that heats up is noticed within tens of transactions — shrunk toward
a global prior while data is scarce.

The tracker also counts in-flight writers per record, which is the
contention signal the admission controller's *prior* likelihood uses before
any votes exist.
"""

from __future__ import annotations

from typing import Dict

from repro.stats.ewma import EwmaRate


class ConflictTracker:
    def __init__(
        self,
        alpha: float = 0.05,
        prior: float = 0.02,
        prior_strength: float = 10.0,
    ) -> None:
        self.alpha = alpha
        self.prior = prior
        self.prior_strength = prior_strength
        self._rates: Dict[str, EwmaRate] = {}
        self._global = EwmaRate(alpha=alpha, prior=prior, prior_strength=prior_strength)
        self._inflight: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Outcome observations
    # ------------------------------------------------------------------
    def _rate_for(self, key: str) -> EwmaRate:
        rate = self._rates.get(key)
        if rate is None:
            rate = EwmaRate(alpha=self.alpha, prior=self.prior, prior_strength=self.prior_strength)
            self._rates[key] = rate
        return rate

    def observe_outcome(self, key: str, conflicted: bool) -> None:
        """One decided transaction's experience with this record."""
        self._rate_for(key).update(conflicted)
        self._global.update(conflicted)

    def conflict_probability(self, key: str) -> float:
        """Probability a transaction writing this record hits a conflict."""
        rate = self._rates.get(key)
        if rate is None or rate.count == 0:
            return self._global.rate
        return rate.rate

    # ------------------------------------------------------------------
    # In-flight contention
    # ------------------------------------------------------------------
    def register_inflight(self, key: str) -> None:
        self._inflight[key] = self._inflight.get(key, 0) + 1

    def unregister_inflight(self, key: str) -> None:
        remaining = self._inflight.get(key, 0) - 1
        if remaining > 0:
            self._inflight[key] = remaining
        else:
            self._inflight.pop(key, None)

    def inflight_writers(self, key: str) -> int:
        return self._inflight.get(key, 0)

    def prior_conflict_probability(self, key: str) -> float:
        """Pre-submission conflict hazard, scaled by current contention.

        With ``w`` other writers in flight on the record, the chance this
        option survives every independent hazard is ``(1-c)^(1+w)``; the
        prior conflict probability is its complement.
        """
        base = self.conflict_probability(key)
        writers = self.inflight_writers(key)
        survive = (1.0 - base) ** (1 + writers)
        return 1.0 - survive
