"""The staged transaction lifecycle PLANET exposes to applications.

This is the heart of the programming model: instead of a single opaque
"running" state, a PLANET transaction moves through observable stages and the
application can attach behaviour to each transition (see
:class:`~repro.core.callbacks.CallbackSet`).

::

    CREATED ──submit──▶ READING ──options sent──▶ PENDING ──votes──▶ COMMITTED
        │                  │                         │  ╲
        │                  │                         │   ╲ p ≥ threshold
        │                  ▼                         ▼    ▼
        └──admission──▶ REJECTED                  ABORTED  GUESSED ──▶ COMMITTED
                                                              │
                                                              └──▶ ABORTED (wrong guess)
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.core.errors import InvalidTransition


class TxStage(enum.Enum):
    CREATED = "created"
    REJECTED = "rejected"        # refused by admission control, never ran
    READING = "reading"          # read phase at the local replica
    PENDING = "pending"          # options proposed, votes arriving
    GUESSED = "guessed"          # speculatively committed to the application
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL: FrozenSet[TxStage] = frozenset(
    {TxStage.REJECTED, TxStage.COMMITTED, TxStage.ABORTED}
)

_ALLOWED: Dict[TxStage, FrozenSet[TxStage]] = {
    TxStage.CREATED: frozenset({TxStage.READING, TxStage.REJECTED}),
    TxStage.READING: frozenset({TxStage.PENDING, TxStage.COMMITTED, TxStage.ABORTED}),
    TxStage.PENDING: frozenset({TxStage.GUESSED, TxStage.COMMITTED, TxStage.ABORTED}),
    TxStage.GUESSED: frozenset({TxStage.COMMITTED, TxStage.ABORTED}),
    TxStage.REJECTED: frozenset(),
    TxStage.COMMITTED: frozenset(),
    TxStage.ABORTED: frozenset(),
}


#: Stages that occupy simulated time and therefore carry an obs span
#: (``stage``/``<name>``, track = txid) from entry until the next
#: transition.  Terminal stages are instants — the span of the stage being
#: left ends there; no new span opens.
SPANNED_STAGES: FrozenSet[TxStage] = frozenset(
    {TxStage.READING, TxStage.PENDING, TxStage.GUESSED}
)


def check_transition(current: TxStage, new: TxStage) -> None:
    """Raise :class:`InvalidTransition` unless ``current -> new`` is legal."""
    if new not in _ALLOWED[current]:
        raise InvalidTransition(f"illegal stage transition {current.value} -> {new.value}")


def allowed_from(stage: TxStage) -> FrozenSet[TxStage]:
    return _ALLOWED[stage]
