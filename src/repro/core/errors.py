"""PLANET exceptions."""

from __future__ import annotations


class PlanetError(Exception):
    """Base class for PLANET errors."""


class InvalidTransition(PlanetError):
    """A transaction was moved through an illegal stage transition."""


class TransactionSealed(PlanetError):
    """The transaction was modified after submission."""
