"""Likelihood-driven admission control.

Under high contention an optimistic engine wastes wide-area round trips on
transactions that are doomed to abort.  PLANET reuses the commit-likelihood
machinery *before submission*: if the prior likelihood of a transaction
(driven by the conflict rates and current in-flight contention of the
records it writes) falls below a threshold, the transaction is rejected
immediately — a cheap local abort instead of an expensive distributed one —
which raises goodput for everyone else.

Policies:

* ``NONE`` — admit everything (plain PLANET / the engines' native behaviour);
* ``LIKELIHOOD`` — reject when prior commit likelihood < ``threshold``;
* ``RANDOM`` — reject a fixed fraction uniformly at random.  This is the
  A3 ablation control: it sheds the same load without using the prediction,
  isolating how much of the goodput win comes from *which* transactions are
  shed rather than how many;
* ``DELAY`` — instead of rejecting outright, hold a low-likelihood
  transaction back with jittered exponential backoff and re-evaluate: hot
  records cool down as their in-flight writers decide, so many held
  transactions become admittable a round trip later.  Gives up into a
  rejection after ``max_delays`` attempts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Optional, Sequence


class AdmissionPolicy(enum.Enum):
    NONE = "none"
    LIKELIHOOD = "likelihood"
    RANDOM = "random"
    DELAY = "delay"


class AdmissionAction(enum.Enum):
    ADMIT = "admit"
    REJECT = "reject"
    DELAY = "delay"


@dataclass
class AdmissionDecision:
    action: AdmissionAction
    prior_likelihood: float
    policy: AdmissionPolicy
    delay_ms: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.action is AdmissionAction.ADMIT


class AdmissionController:
    def __init__(
        self,
        policy: AdmissionPolicy = AdmissionPolicy.NONE,
        threshold: float = 0.3,
        random_reject_rate: float = 0.0,
        delay_ms: float = 100.0,
        max_delays: int = 3,
        rng: Optional[Random] = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be a probability")
        if not 0.0 <= random_reject_rate < 1.0:
            raise ValueError("random_reject_rate must be in [0, 1)")
        if delay_ms <= 0:
            raise ValueError("delay_ms must be positive")
        if max_delays < 1:
            raise ValueError("max_delays must be >= 1")
        self.policy = policy
        self.threshold = threshold
        self.random_reject_rate = random_reject_rate
        self.delay_ms = delay_ms
        self.max_delays = max_delays
        self._rng = rng if rng is not None else Random(0)
        self.admitted_count = 0
        self.rejected_count = 0
        self.delayed_count = 0

    def decide(self, prior_likelihood: float, previous_delays: int = 0) -> AdmissionDecision:
        """Decide for one (re)submission attempt.

        ``previous_delays`` is how often this transaction was already held
        back; the DELAY policy backs off (jittered) and gives up into a
        rejection after ``max_delays`` attempts.
        """
        if self.policy is AdmissionPolicy.NONE:
            action = AdmissionAction.ADMIT
        elif self.policy is AdmissionPolicy.LIKELIHOOD:
            action = (
                AdmissionAction.ADMIT
                if prior_likelihood >= self.threshold
                else AdmissionAction.REJECT
            )
        elif self.policy is AdmissionPolicy.RANDOM:
            action = (
                AdmissionAction.ADMIT
                if self._rng.random() >= self.random_reject_rate
                else AdmissionAction.REJECT
            )
        else:  # DELAY: hold doomed transactions until the record cools down
            if prior_likelihood >= self.threshold:
                action = AdmissionAction.ADMIT
            elif previous_delays < self.max_delays:
                action = AdmissionAction.DELAY
            else:
                action = AdmissionAction.REJECT

        delay_ms = 0.0
        if action is AdmissionAction.ADMIT:
            self.admitted_count += 1
        elif action is AdmissionAction.REJECT:
            self.rejected_count += 1
        else:
            self.delayed_count += 1
            backoff = self.delay_ms * (2 ** previous_delays)
            delay_ms = backoff * self._rng.uniform(0.5, 1.5)
        return AdmissionDecision(
            action=action,
            prior_likelihood=prior_likelihood,
            policy=self.policy,
            delay_ms=delay_ms,
        )

    @property
    def reject_rate(self) -> float:
        total = self.admitted_count + self.rejected_count
        return self.rejected_count / total if total else 0.0
