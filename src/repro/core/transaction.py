"""The PLANET transaction object and its fluent builder API.

A transaction buffers reads and writes, carries the application's latency
contract (timeout, guess threshold) and callbacks, and records every stage
transition with its simulated timestamp so experiments can reconstruct the
full timeline (submit → guess → decide) afterwards.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.callbacks import CallbackSet
from repro.core.errors import TransactionSealed
from repro.core.stages import TxStage, check_transition
from repro.ops import (
    AbortReason,
    DeltaOp,
    Decision,
    TxRequest,
    WriteLike,
    WriteOp,
    next_txid,
    validate_isolation,
)


class PlanetTransaction:
    """One application transaction under the PLANET programming model.

    Build it fluently, then hand it to
    :meth:`~repro.core.client.PlanetClient.submit`::

        txn = (client.transaction()
               .read("account")
               .increment("stock:42", -1)
               .write("order:7", order)
               .with_timeout(500.0)
               .with_guess_threshold(0.95)
               .on_guess(show_confirmation)
               .on_wrong_guess(send_apology_email)
               .on_commit(finalize))
    """

    def __init__(self, txid: Optional[str] = None) -> None:
        self.txid = txid if txid is not None else next_txid()
        self.reads: List[str] = []
        self.writes: List[WriteLike] = []
        self.timeout_ms: Optional[float] = None
        self.guess_threshold: Optional[float] = None
        # Per-transaction isolation override; None inherits the session's
        # configured level (PlanetConfig.isolation).
        self.isolation: Optional[str] = None
        self.callbacks = CallbackSet()

        # Runtime state, owned by the session/speculation layer.
        self.stage = TxStage.CREATED
        self.stage_times: Dict[TxStage, float] = {}
        self.read_results: Dict[str, Any] = {}
        self.likelihood_trace: List[Tuple[float, float]] = []
        self.predicted_at_guess: Optional[float] = None
        self.predicted_at_first_vote: Optional[float] = None
        self.decision: Optional[Decision] = None
        self.waiter = None  # set on submit; wakes with the final Decision

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self.stage is not TxStage.CREATED:
            raise TransactionSealed(f"{self.txid} already submitted")

    def read(self, key: str) -> "PlanetTransaction":
        self._check_mutable()
        self.reads.append(key)
        return self

    def write(self, key: str, value: Any) -> "PlanetTransaction":
        """Exclusive write: validated against the version read."""
        self._check_mutable()
        self.writes.append(WriteOp(key=key, value=value))
        return self

    def increment(self, key: str, delta: float, floor: float = 0.0) -> "PlanetTransaction":
        """Commutative numeric update with an escrow ``floor``."""
        self._check_mutable()
        self.writes.append(DeltaOp(key=key, delta=delta, floor=floor))
        return self

    def with_timeout(self, timeout_ms: float) -> "PlanetTransaction":
        self._check_mutable()
        if timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        self.timeout_ms = timeout_ms
        return self

    def with_guess_threshold(self, threshold: float) -> "PlanetTransaction":
        self._check_mutable()
        if not 0.0 < threshold <= 1.0:
            raise ValueError("guess threshold must be in (0, 1]")
        self.guess_threshold = threshold
        return self

    def with_isolation(self, level: str) -> "PlanetTransaction":
        """Declare this transaction's isolation contract (overrides the
        session default; see :data:`repro.ops.ISOLATION_LEVELS`)."""
        self._check_mutable()
        self.isolation = validate_isolation(level)
        return self

    def on_progress(self, fn: Callable) -> "PlanetTransaction":
        self.callbacks.on_progress = fn
        return self

    def on_guess(self, fn: Callable) -> "PlanetTransaction":
        self.callbacks.on_guess = fn
        return self

    def on_wrong_guess(self, fn: Callable) -> "PlanetTransaction":
        self.callbacks.on_wrong_guess = fn
        return self

    def on_commit(self, fn: Callable) -> "PlanetTransaction":
        self.callbacks.on_commit = fn
        return self

    def on_abort(self, fn: Callable) -> "PlanetTransaction":
        self.callbacks.on_abort = fn
        return self

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def transition(self, new_stage: TxStage, now: float) -> None:
        check_transition(self.stage, new_stage)
        self.stage = new_stage
        self.stage_times[new_stage] = now

    def to_request(self) -> TxRequest:
        return TxRequest(
            txid=self.txid,
            reads=list(self.reads),
            writes=self.writes,
            deadline_ms=self.timeout_ms,
        )

    # Convenience accessors for experiment code -------------------------
    @property
    def submitted_at(self) -> Optional[float]:
        return self.stage_times.get(TxStage.READING)

    @property
    def guessed_at(self) -> Optional[float]:
        return self.stage_times.get(TxStage.GUESSED)

    @property
    def decided_at(self) -> Optional[float]:
        if self.decision is None:
            return None
        return self.decision.decided_at

    @property
    def committed(self) -> bool:
        return self.stage is TxStage.COMMITTED

    @property
    def was_guessed(self) -> bool:
        return TxStage.GUESSED in self.stage_times

    @property
    def abort_reason(self) -> AbortReason:
        if self.decision is None:
            return AbortReason.NONE
        return self.decision.reason

    def commit_latency_ms(self) -> Optional[float]:
        if self.submitted_at is None or self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at

    def guess_latency_ms(self) -> Optional[float]:
        if self.submitted_at is None or self.guessed_at is None:
            return None
        return self.guessed_at - self.submitted_at

    def __repr__(self) -> str:
        return f"<PlanetTransaction {self.txid} {self.stage.value}>"
