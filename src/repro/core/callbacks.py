"""Application callbacks on transaction progress.

Callback semantics (matching the paper's programming model):

* ``on_progress(tx, likelihood)`` — fired every time new protocol evidence
  (a replica vote) updates the predicted commit likelihood.
* ``on_guess(tx, likelihood)`` — fired once, when the likelihood first
  crosses the transaction's guess threshold: the application may now respond
  to the user speculatively.
* ``on_wrong_guess(tx)`` — compensation hook: the transaction was guessed
  and then aborted.  ``on_abort`` does NOT additionally fire in this case;
  the application already acted on the guess and must compensate instead.
* ``on_commit(tx)`` — the transaction durably committed (guessed or not).
* ``on_abort(tx)`` — the transaction aborted without having been guessed
  (conflict, timeout, or admission rejection).

Exceptions raised inside callbacks are deliberately not swallowed: they are
application bugs and should fail the simulation loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

ProgressFn = Callable[[Any, float], None]
GuessFn = Callable[[Any, float], None]
TxFn = Callable[[Any], None]


@dataclass
class CallbackSet:
    on_progress: Optional[ProgressFn] = None
    on_guess: Optional[GuessFn] = None
    on_wrong_guess: Optional[TxFn] = None
    on_commit: Optional[TxFn] = None
    on_abort: Optional[TxFn] = None

    def fire_progress(self, tx: Any, likelihood: float) -> None:
        if self.on_progress is not None:
            self.on_progress(tx, likelihood)

    def fire_guess(self, tx: Any, likelihood: float) -> None:
        if self.on_guess is not None:
            self.on_guess(tx, likelihood)

    def fire_wrong_guess(self, tx: Any) -> None:
        if self.on_wrong_guess is not None:
            self.on_wrong_guess(tx)

    def fire_commit(self, tx: Any) -> None:
        if self.on_commit is not None:
            self.on_commit(tx)

    def fire_abort(self, tx: Any) -> None:
        if self.on_abort is not None:
            self.on_abort(tx)
