"""Commit-likelihood prediction from live protocol state.

The model answers: *given what the coordinator has seen so far, what is the
probability this transaction eventually commits?*  It composes three
ingredients, per written record:

1. **Vote state** — with ``a`` accepts of a ``q`` quorum from ``n`` replicas
   and ``r`` rejects, the record still needs ``q - a`` accepts from the
   ``n - a - r`` outstanding replicas; if rejects already make a quorum
   impossible the likelihood is zero.
2. **Conflict probabilities** — each outstanding replica accepts with
   probability ``1 - c(key)`` where ``c`` is the record's live conflict rate
   (see :mod:`repro.core.conflicts`).
3. **Deadline pressure** — an accept only helps if it arrives before the
   transaction's deadline.  Each outstanding replica's response time is
   modelled as a lognormal round trip; having already waited ``elapsed`` ms
   without a response, the probability it arrives in the remaining budget is
   the conditional tail ``(F(total) - F(elapsed)) / (1 - F(elapsed))``.

Per-record success is an exact Poisson-binomial tail (at most a handful of
replicas, so dynamic programming is exact and cheap), and the transaction
commits iff every record succeeds — records are independent because they run
independent Paxos instances.

Ablated variants (experiment A1): ``conflict_only`` drops ingredient 3;
``static_prior`` replaces per-record rates with one global constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.conflicts import ConflictTracker
from repro.mdcc.coordinator import ProgressSnapshot, RecordProgress
from repro.net.latency import LatencyModel, _norm_ppf
from repro.net.topology import Datacenter

_SQRT2 = math.sqrt(2.0)


@dataclass
class LikelihoodConfig:
    """Model variant selection (the full model is the default)."""

    use_deadline: bool = True          # ingredient 3
    use_per_record_rates: bool = True  # ingredient 2 per-record vs static
    static_conflict_rate: float = 0.05
    # Replica rejections of an exclusive option are *correlated*: the
    # conflicting pending option is replicated at every replica.  The default
    # model therefore treats "this record conflicts" as a record-level event
    # and updates it Bayesianly as accept votes arrive; setting this False
    # falls back to independent per-replica conflicts (an A1 ablation arm).
    correlated_conflicts: bool = True
    # P(one replica accepts our option anyway | a conflictor is live): the
    # race "leak" — some replicas vote before the conflicting option lands.
    conflict_accept_leak: float = 0.35
    # Extra per-response overhead beyond the pure network RTT (WAL sync at
    # the replica); keeps the deadline model honest about total response time.
    response_overhead_ms: float = 1.0

    # -- uniform config API (see repro.harness.overrides) ---------------
    def to_dict(self):
        from repro.harness.overrides import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_overrides(cls, overrides, base=None):
        from repro.harness.overrides import config_from_overrides

        return config_from_overrides(base if base is not None else cls(), overrides)

    def with_overrides(self, overrides):
        from repro.harness.overrides import config_from_overrides

        return config_from_overrides(self, overrides)


def poisson_binomial_tail(probabilities: Sequence[float], at_least: int) -> float:
    """P(sum of independent Bernoulli(p_i) >= at_least), exact DP.

    Degenerate vectors are resolved without running the DP; each early-out
    returns the exact float the DP would have produced (0.0, 1.0, or —
    for ``at_least == n`` — the same left-to-right product the DP
    accumulates into ``dp[n]``), so results are bit-identical either way.
    """
    if at_least <= 0:
        return 1.0
    n = len(probabilities)
    if at_least > n:
        return 0.0
    any_success = False
    all_certain = True
    for p in probabilities:
        if p != 0.0:
            any_success = True
        if p != 1.0:
            all_certain = False
    if not any_success:
        return 0.0
    if all_certain:
        return 1.0
    if at_least == n:
        result = 1.0
        for p in probabilities:
            result *= p
        return result
    # dp[k] = P(exactly k successes) over the prefix processed so far.
    dp = [1.0] + [0.0] * n
    for p in probabilities:
        for k in range(len(dp) - 1, 0, -1):
            dp[k] = dp[k] * (1.0 - p) + dp[k - 1] * p
        dp[0] *= 1.0 - p
    return sum(dp[at_least:])


def _norm_ppf_clamped(q: float) -> float:
    """Standard normal inverse CDF, clamped away from the endpoints."""
    return _norm_ppf(min(max(q, 1e-9), 1.0 - 1e-9))


def _lognormal_cdf(x: float, median: float, sigma: float) -> float:
    """CDF of a lognormal parameterised by its median and shape sigma."""
    if x <= 0:
        return 0.0
    if sigma <= 0:
        return 1.0 if x >= median else 0.0
    z = (math.log(x) - math.log(median)) / sigma
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


def _lognormal_cdf_ln(x: float, ln_median: float, sigma: float) -> float:
    """:func:`_lognormal_cdf` with ``log(median)`` precomputed (sigma > 0).

    The model evaluates the CDF twice per outstanding replica against the
    same median; caching the log halves the transcendental work without
    changing a single bit of the result.
    """
    if x <= 0:
        return 0.0
    z = (math.log(x) - ln_median) / sigma
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


class CommitLikelihoodModel:
    """Evaluates commit likelihood for in-flight transactions.

    ``coordinator_dc`` anchors the response-time model: an outstanding reply
    from replica DC *d* is a round trip ``coordinator_dc -> d ->
    coordinator_dc``.
    """

    def __init__(
        self,
        conflicts: ConflictTracker,
        latency: LatencyModel,
        coordinator_dc: Datacenter,
        config: Optional[LikelihoodConfig] = None,
    ) -> None:
        self.conflicts = conflicts
        self.latency = latency
        self.coordinator_dc = coordinator_dc
        self.config = config if config is not None else LikelihoodConfig()
        # (median, log(median)) of the modelled RTT per replica-DC index.
        # Topology, coordinator placement, and the response overhead are all
        # fixed for the model's lifetime, so these never invalidate.
        self._rtt_params_by_dc: dict = {}

    # ------------------------------------------------------------------
    def _accept_probability(self, key: str) -> float:
        if self.config.use_per_record_rates:
            return 1.0 - self.conflicts.conflict_probability(key)
        return 1.0 - self.config.static_conflict_rate

    def _rtt_median_ms(self, replica_dc: Datacenter) -> float:
        return self._rtt_params(replica_dc)[0]

    def _rtt_params(self, replica_dc: Datacenter) -> tuple:
        """Cached ``(median, log(median))`` of the modelled round trip."""
        params = self._rtt_params_by_dc.get(replica_dc.index)
        if params is None:
            one_way = self.latency.topology.one_way_ms(self.coordinator_dc, replica_dc)
            median = 2.0 * one_way + self.config.response_overhead_ms
            params = self._rtt_params_by_dc[replica_dc.index] = (median, math.log(median))
        return params

    def _in_time_probability(
        self, replica_dc: Datacenter, elapsed_ms: float, remaining_ms: Optional[float]
    ) -> float:
        """P(outstanding response arrives before the deadline | not yet here)."""
        if not self.config.use_deadline or remaining_ms is None:
            return 1.0
        if remaining_ms <= 0:
            return 0.0
        median, ln_median = self._rtt_params(replica_dc)
        # A round trip is two lognormal legs; approximate the sum as a
        # lognormal with sigma scaled by 1/sqrt(2) (variance addition).
        sigma = self.latency.jitter_sigma / _SQRT2
        if sigma > 0:
            already = _lognormal_cdf_ln(elapsed_ms, ln_median, sigma)
        else:
            already = _lognormal_cdf(elapsed_ms, median, sigma)
        if already >= 1.0 - 1e-12:
            # The response is overdue far beyond the distribution's support;
            # treat it as lost-or-slow with a pessimistic constant.
            return 0.0
        if sigma > 0:
            by_deadline = _lognormal_cdf_ln(elapsed_ms + remaining_ms, ln_median, sigma)
        else:
            by_deadline = _lognormal_cdf(elapsed_ms + remaining_ms, median, sigma)
        return max(0.0, min(1.0, (by_deadline - already) / (1.0 - already)))

    # ------------------------------------------------------------------
    def record_likelihood(
        self, record: RecordProgress, now: float, deadline_at: Optional[float]
    ) -> float:
        """Probability that one record's option still gets chosen in time."""
        needed = record.quorum - record.accepts
        if needed <= 0:
            return 1.0
        if record.rejects > record.n - record.quorum:
            return 0.0
        if needed > len(record.outstanding_dcs):
            return 0.0
        elapsed = max(0.0, now - record.proposed_at)
        remaining = None if deadline_at is None else deadline_at - now
        if not self.config.use_deadline or remaining is None:
            # Ingredient 3 disabled (or no deadline): every outstanding
            # response counts in full, exactly as the per-DC calls return.
            in_time = [1.0] * len(record.outstanding_dcs)
        else:
            in_time = [
                self._in_time_probability(dc, elapsed, remaining)
                for dc in record.outstanding_dcs
            ]
        conflict_p = 1.0 - self._accept_probability(record.key)

        if self.config.correlated_conflicts:
            leak = self.config.conflict_accept_leak
            win_clean = poisson_binomial_tail(in_time, needed)
            win_conflicted = poisson_binomial_tail([leak * t for t in in_time], needed)
            if record.rejects == 0:
                # Bayes over the record-level conflict hypothesis: each
                # accept in hand is evidence against a live conflictor,
                # because under a conflict a replica accepts only with the
                # leak probability.
                evidence_conflict = conflict_p * (leak ** record.accepts)
                evidence_clean = 1.0 - conflict_p
                denominator = evidence_conflict + evidence_clean
                conflict_post = evidence_conflict / denominator if denominator > 0 else 1.0
            else:
                # A reject is near-certain proof of a conflictor; the open
                # question is whether this option races to quorum anyway.
                conflict_post = 1.0
            return (1.0 - conflict_post) * win_clean + conflict_post * win_conflicted

        per_replica = [(1.0 - conflict_p) * t for t in in_time]
        return poisson_binomial_tail(per_replica, needed)

    def likelihood(self, snapshot: ProgressSnapshot, now: float) -> float:
        """Commit likelihood of the whole transaction right now."""
        p = 1.0
        for record in snapshot.records:
            p *= self.record_likelihood(record, now, snapshot.deadline_at)
            if p == 0.0:
                break
        return p

    # ------------------------------------------------------------------
    # Commit-time prediction (the "latency-aware" half of the model)
    # ------------------------------------------------------------------
    def expected_decision_time(self, snapshot: ProgressSnapshot, now: float) -> float:
        """Expected absolute simulated time at which the decision lands.

        For each record still short of quorum, the decision waits for the
        ``needed``-th fastest outstanding response; we approximate each
        response's remaining time by the conditional median of its lognormal
        round trip given that ``elapsed`` ms have already passed, and take
        the transaction-level maximum over records.  Already-decided records
        contribute ``now``.  This powers progress bars and the use-case
        patterns that race a fallback against the predicted commit.
        """
        worst = now
        for record in snapshot.records:
            needed = record.quorum - record.accepts
            if needed <= 0:
                continue
            if needed > len(record.outstanding_dcs):
                # Doomed (or will be): the timeout decides, if there is one.
                if snapshot.deadline_at is not None:
                    worst = max(worst, snapshot.deadline_at)
                continue
            elapsed = max(0.0, now - record.proposed_at)
            remaining = sorted(
                self._conditional_median_remaining_ms(dc, elapsed)
                for dc in record.outstanding_dcs
            )
            worst = max(worst, now + remaining[needed - 1])
        if snapshot.deadline_at is not None:
            worst = min(worst, snapshot.deadline_at)
        return worst

    def _conditional_median_remaining_ms(self, replica_dc: Datacenter, elapsed_ms: float) -> float:
        """Median additional wait for a response that is ``elapsed_ms`` old."""
        median = self._rtt_median_ms(replica_dc)
        sigma = self.latency.jitter_sigma / _SQRT2
        if sigma <= 0:
            return max(median - elapsed_ms, 0.0)
        already = _lognormal_cdf(elapsed_ms, median, sigma)
        if already >= 1.0 - 1e-9:
            # Far beyond the distribution: the message is effectively lost;
            # report one more median as a shrug.
            return median
        # Median of the conditional distribution: the quantile at the
        # midpoint of the remaining mass.
        target = already + (1.0 - already) / 2.0
        z = _norm_ppf_clamped(target)
        value = median * math.exp(sigma * z)
        return max(value - elapsed_ms, 0.0)

    # ------------------------------------------------------------------
    def prior_likelihood(self, write_keys: Sequence[str]) -> float:
        """Pre-submission likelihood used by admission control.

        No votes exist yet, so only contention-scaled conflict priors apply
        (the deadline ingredient is close to 1 for sane timeouts and is
        deliberately ignored here, matching the paper's use of the predictor
        for admission).
        """
        p = 1.0
        for key in write_keys:
            if self.config.use_per_record_rates:
                hazard = self.conflicts.prior_conflict_probability(key)
            else:
                hazard = self.config.static_conflict_rate
            p *= 1.0 - hazard
        return p


class EmpiricalLikelihoodModel:
    """Likelihood learned from history instead of derived analytically.

    Maintains, per ``(accepts, rejects)`` vote state, the observed frequency
    with which a record in that state ended up chosen.  Per-record
    probabilities are combined multiplicatively as in the analytic model.
    This is calibrated by construction once enough history accumulates, at
    the cost of a cold start and no deadline awareness — one arm of the A1
    ablation.
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = smoothing
        self._chosen: dict = {}
        self._seen: dict = {}

    def observe(self, accepts: int, rejects: int, chosen: bool) -> None:
        """Record that a record once in state (a, r) was eventually chosen."""
        state = (accepts, rejects)
        self._seen[state] = self._seen.get(state, 0) + 1
        if chosen:
            self._chosen[state] = self._chosen.get(state, 0) + 1

    def record_likelihood(
        self, record: RecordProgress, now: float, deadline_at: Optional[float]
    ) -> float:
        needed = record.quorum - record.accepts
        if needed <= 0:
            return 1.0
        if record.rejects > record.n - record.quorum:
            return 0.0
        state = (record.accepts, record.rejects)
        seen = self._seen.get(state, 0)
        chosen = self._chosen.get(state, 0)
        # Laplace-smoothed toward an optimistic prior of 0.9: cold-start
        # guesses should not be wildly pessimistic.
        return (chosen + 0.9 * self.smoothing) / (seen + self.smoothing)

    def likelihood(self, snapshot: ProgressSnapshot, now: float) -> float:
        p = 1.0
        for record in snapshot.records:
            p *= self.record_likelihood(record, now, snapshot.deadline_at)
            if p == 0.0:
                break
        return p

    def prior_likelihood(self, write_keys: Sequence[str]) -> float:
        state = (0, 0)
        seen = self._seen.get(state, 0)
        chosen = self._chosen.get(state, 0)
        per_record = (chosen + 0.9 * self.smoothing) / (seen + self.smoothing)
        return per_record ** len(list(write_keys))
