"""PLANET: Predictive Latency-Aware NEtworked Transactions.

The paper's contribution, layered on the MDCC engine:

* a staged transaction model that exposes commit progress through
  application callbacks (:mod:`repro.core.transaction`,
  :mod:`repro.core.stages`);
* commit-likelihood prediction from live protocol state
  (:mod:`repro.core.likelihood`, :mod:`repro.core.conflicts`);
* speculative commits — "guesses" — with compensation on a wrong guess
  (:mod:`repro.core.speculation`);
* likelihood-driven admission control (:mod:`repro.core.admission`).

Applications use :class:`~repro.core.client.PlanetClient`.
"""

from repro.core.admission import AdmissionController, AdmissionPolicy
from repro.core.callbacks import CallbackSet
from repro.core.client import PlanetClient
from repro.core.conflicts import ConflictTracker
from repro.core.errors import InvalidTransition, PlanetError
from repro.core.likelihood import CommitLikelihoodModel, LikelihoodConfig
from repro.core.session import PlanetSession
from repro.core.stages import TxStage
from repro.core.transaction import PlanetTransaction

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CallbackSet",
    "PlanetClient",
    "ConflictTracker",
    "PlanetError",
    "InvalidTransition",
    "CommitLikelihoodModel",
    "LikelihoodConfig",
    "PlanetSession",
    "TxStage",
    "PlanetTransaction",
]
