"""Per-transaction timelines: reconstruct and render what happened when.

A :class:`~repro.core.transaction.PlanetTransaction` carries everything
needed to audit its life after the fact — stage transition timestamps, the
likelihood trace (one point per replica vote), and the decision.  This
module turns that into a structured timeline and an ASCII rendering, used
by examples and debugging sessions::

    t=   0.00 ms | submitted (reading)
    t=   1.52 ms | options proposed (pending)
    t=   2.56 ms | vote -> likelihood 0.975
    t=   2.56 ms | GUESS at p=0.975
    ...
    t= 173.78 ms | COMMITTED (latency 173.78 ms)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.stages import TxStage
from repro.core.transaction import PlanetTransaction


@dataclass(frozen=True)
class TimelineEvent:
    time_ms: float
    label: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"t={self.time_ms:9.2f} ms | {self.label}"
        if self.detail:
            text += f" ({self.detail})"
        return text


_STAGE_LABELS = {
    TxStage.READING: "submitted, read phase started",
    TxStage.PENDING: "options proposed to all replicas",
    TxStage.GUESSED: "GUESS: speculative commit reported to the application",
    TxStage.COMMITTED: "COMMITTED: durable at quorum",
    TxStage.ABORTED: "ABORTED",
    TxStage.REJECTED: "REJECTED by admission control",
}


def build_timeline(tx: PlanetTransaction) -> List[TimelineEvent]:
    """All of the transaction's events, time-ordered."""
    events: List[TimelineEvent] = []
    for stage, when in tx.stage_times.items():
        label = _STAGE_LABELS.get(stage, stage.value)
        detail = ""
        if stage is TxStage.GUESSED and tx.predicted_at_guess is not None:
            detail = f"p={tx.predicted_at_guess:.3f}"
        elif stage is TxStage.ABORTED:
            detail = tx.abort_reason.value
        elif stage is TxStage.COMMITTED and tx.commit_latency_ms() is not None:
            detail = f"latency {tx.commit_latency_ms():.2f} ms"
        events.append(TimelineEvent(when, label, detail))
    for when, likelihood in tx.likelihood_trace:
        events.append(
            TimelineEvent(when, "replica vote", f"likelihood {likelihood:.3f}")
        )
    events.sort(key=lambda event: (event.time_ms, event.label))
    return events


def render_timeline(tx: PlanetTransaction) -> str:
    """Human-readable trace of one transaction."""
    header = f"transaction {tx.txid} — final stage: {tx.stage.value}"
    lines = [header, "-" * len(header)]
    lines.extend(str(event) for event in build_timeline(tx))
    return "\n".join(lines)


def render_latency_bar(
    tx: PlanetTransaction, width: int = 60
) -> Optional[str]:
    """A one-line bar showing guess vs commit position on the tx's lifetime.

    ``G`` marks the guess, ``D`` the decision; the bar spans submission to
    decision.  None for transactions that never decided.
    """
    start = tx.submitted_at
    end = tx.decided_at
    if start is None or end is None or end <= start:
        return None
    span = end - start

    def position(t: float) -> int:
        return min(width - 1, max(0, int((t - start) / span * (width - 1))))

    bar = ["-"] * width
    if tx.guessed_at is not None:
        bar[position(tx.guessed_at)] = "G"
    bar[width - 1] = "D"
    return f"[{''.join(bar)}] {span:.1f} ms"
