"""Per-transaction timelines: reconstruct and render what happened when.

A :class:`~repro.core.transaction.PlanetTransaction` carries everything
needed to audit its life after the fact; the
:func:`repro.obs.events_from_transaction` adapter turns that audit surface
into the same structured :class:`~repro.obs.TraceEvent` stream live
tracing emits, and this module is a thin renderer over it — a structured
timeline and an ASCII rendering, used by examples and debugging sessions::

    t=   0.00 ms | submitted (reading)
    t=   1.52 ms | options proposed (pending)
    t=   2.56 ms | vote -> likelihood 0.975
    t=   2.56 ms | GUESS at p=0.975
    ...
    t= 173.78 ms | COMMITTED (latency 173.78 ms)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.stages import TxStage
from repro.core.transaction import PlanetTransaction
from repro.obs.events import TraceEvent, events_from_transaction


@dataclass(frozen=True)
class TimelineEvent:
    time_ms: float
    label: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"t={self.time_ms:9.2f} ms | {self.label}"
        if self.detail:
            text += f" ({self.detail})"
        return text


_STAGE_LABELS = {
    TxStage.READING: "submitted, read phase started",
    TxStage.PENDING: "options proposed to all replicas",
    TxStage.GUESSED: "GUESS: speculative commit reported to the application",
    TxStage.COMMITTED: "COMMITTED: durable at quorum",
    TxStage.ABORTED: "ABORTED",
    TxStage.REJECTED: "REJECTED by admission control",
}


def _render_event(event: TraceEvent) -> TimelineEvent:
    """One obs event as a human timeline row."""
    if event.category == "stage":
        label = _STAGE_LABELS.get(TxStage(event.name), event.name)
        detail = ""
        if "p" in event.fields:
            detail = f"p={event.fields['p']:.3f}"
        elif "reason" in event.fields:
            detail = event.fields["reason"]
        elif "latency_ms" in event.fields:
            detail = f"latency {event.fields['latency_ms']:.2f} ms"
        return TimelineEvent(event.time_ms, label, detail)
    if event.category == "tx" and event.name == "vote":
        return TimelineEvent(
            event.time_ms, "replica vote", f"likelihood {event.fields['likelihood']:.3f}"
        )
    fields = ", ".join(f"{k}={v}" for k, v in sorted(event.fields.items()))
    return TimelineEvent(event.time_ms, f"{event.category}/{event.name}", fields)


def build_timeline(tx: PlanetTransaction) -> List[TimelineEvent]:
    """All of the transaction's events, time-ordered.

    Consumes the :mod:`repro.obs` event stream for the transaction rather
    than the transaction's internals directly, so the timeline stays in
    lock-step with what live tracing reports.
    """
    events = [_render_event(event) for event in events_from_transaction(tx)]
    events.sort(key=lambda event: (event.time_ms, event.label))
    return events


def render_timeline(tx: PlanetTransaction) -> str:
    """Human-readable trace of one transaction."""
    header = f"transaction {tx.txid} — final stage: {tx.stage.value}"
    lines = [header, "-" * len(header)]
    lines.extend(str(event) for event in build_timeline(tx))
    return "\n".join(lines)


def render_latency_bar(
    tx: PlanetTransaction, width: int = 60
) -> Optional[str]:
    """A one-line bar showing guess vs commit position on the tx's lifetime.

    ``G`` marks the guess, ``D`` the decision; the bar spans submission to
    decision.  None for transactions that never decided.
    """
    start = tx.submitted_at
    end = tx.decided_at
    if start is None or end is None or end <= start:
        return None
    span = end - start

    def position(t: float) -> int:
        return min(width - 1, max(0, int((t - start) / span * (width - 1))))

    bar = ["-"] * width
    if tx.guessed_at is not None:
        bar[position(tx.guessed_at)] = "G"
    bar[width - 1] = "D"
    return f"[{''.join(bar)}] {span:.1f} ms"
