"""Declarative fault injection: one plan object for every failure mode.

The network layer exposes latency spikes, partitions and message loss; the
cluster exposes coordinator crashes.  A :class:`FaultPlan` bundles a
schedule of all of them so an experiment (or a chaos test) can declare its
failure scenario in one place and apply it to any cluster::

    plan = FaultPlan(
        spikes=[Spike(1_000, 500, multiplier=4.0)],
        partitions=[PartitionWindow(2_000, 2_400, dc_name="ireland")],
        coordinator_crashes=[CoordinatorCrash("tokyo", at_ms=3_000)],
    )
    plan.apply(cluster)

:func:`chaos_plan` draws a random-but-seeded plan for robustness testing —
the simulated equivalent of a Jepsen nemesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import List

from repro.net.partitions import PartitionWindow
from repro.workload.spikes import Spike, apply_spikes


@dataclass(frozen=True)
class CoordinatorCrash:
    dc_name: str
    at_ms: float


@dataclass
class FaultPlan:
    spikes: List[Spike] = field(default_factory=list)
    partitions: List[PartitionWindow] = field(default_factory=list)
    coordinator_crashes: List[CoordinatorCrash] = field(default_factory=list)

    def apply(self, cluster) -> None:
        """Install every scheduled fault on the cluster (idempotent-unsafe:
        apply a plan to a cluster exactly once)."""
        apply_spikes(cluster.latency, self.spikes)
        for window in self.partitions:
            cluster.network.partitions.add_window(window)
        for crash in self.coordinator_crashes:
            cluster.sim.schedule(crash.at_ms, cluster.crash_coordinator, crash.dc_name)

    @property
    def is_empty(self) -> bool:
        return not (self.spikes or self.partitions or self.coordinator_crashes)

    def describe(self) -> str:
        parts = []
        for spike in self.spikes:
            parts.append(
                f"spike x{spike.multiplier:g} @ {spike.start_ms:.0f}ms "
                f"for {spike.duration_ms:.0f}ms"
            )
        for window in self.partitions:
            parts.append(
                f"partition {window.dc_name} @ {window.start_ms:.0f}-{window.end_ms:.0f}ms"
            )
        for crash in self.coordinator_crashes:
            parts.append(f"crash {crash.dc_name} @ {crash.at_ms:.0f}ms")
        return "; ".join(parts) if parts else "(no faults)"


def chaos_plan(
    dc_names: List[str],
    duration_ms: float,
    seed: int = 0,
    intensity: float = 1.0,
    allow_crashes: bool = True,
) -> FaultPlan:
    """A seeded random fault schedule — the nemesis for chaos tests.

    ``intensity`` scales how many faults are drawn.  Partitions are kept
    short (below typical recovery TTLs) and never cover a majority of data
    centers at once, so liveness — not just safety — remains testable.
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    rng = Random(seed)
    plan = FaultPlan()

    n_spikes = rng.randint(0, max(1, int(3 * intensity)))
    for _ in range(n_spikes):
        start = rng.uniform(0.1, 0.8) * duration_ms
        plan.spikes.append(
            Spike(
                start_ms=start,
                duration_ms=rng.uniform(0.02, 0.10) * duration_ms,
                multiplier=rng.uniform(2.0, 6.0),
            )
        )

    n_partitions = rng.randint(0, max(1, int(2 * intensity)))
    for _ in range(n_partitions):
        start = rng.uniform(0.1, 0.8) * duration_ms
        plan.partitions.append(
            PartitionWindow(
                start_ms=start,
                end_ms=start + rng.uniform(0.02, 0.08) * duration_ms,
                dc_name=rng.choice(dc_names),
            )
        )

    if allow_crashes and rng.random() < min(0.7 * intensity, 0.9):
        plan.coordinator_crashes.append(
            CoordinatorCrash(
                dc_name=rng.choice(dc_names),
                at_ms=rng.uniform(0.2, 0.7) * duration_ms,
            )
        )
    return plan
