"""Cluster assembly: simulator + network + replicas + coordinators.

A :class:`Cluster` is the simulated equivalent of the paper's deployment:
one storage replica per data center (every record fully replicated), and one
transaction coordinator (app server) per data center that local clients talk
to.  The ``engine`` selects the commit protocol every coordinator runs:

* ``"mdcc"`` — the optimistic Paxos-per-record engine PLANET is built on;
* ``"twopc"`` — the lock-based two-phase-commit baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.replica import TwoPcReplica
from repro.baselines.twopc import TwoPcConfig, TwoPcCoordinator
from repro.engine import build_simulator
from repro.mdcc.coordinator import MdccConfig, MdccCoordinator
from repro.mdcc.replica import MdccReplica
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.net.topology import EC2_FIVE_DC, Topology
from repro.storage.node import StorageNode


@dataclass
class ClusterConfig:
    topology: Topology = field(default_factory=lambda: EC2_FIVE_DC)
    seed: int = 0
    engine: str = "mdcc"
    # Simulator kernel implementation: "auto" (compiled when built, else
    # python), "compiled", or "python" — see repro.engine.
    backend: str = "auto"
    # Vectorized per-instant latency draws (numpy); deterministic but a
    # different rng discipline than per-send sampling, so off by default.
    delivery_batching: bool = False
    jitter_sigma: float = 0.2
    loss_probability: float = 0.0
    wal_sync_delay_ms: float = 0.5
    wal_batch_window_ms: float = 0.0
    default_value: object = 0
    # MDCC knobs
    use_fast_path: bool = True
    # Abort on the first rejecting vote instead of quorum-impossible
    # (the Jepsen et al. protocol variant; see MdccConfig).
    optimistic_abort: bool = False
    # Test-only seeded fault for checker validation (see MdccConfig).
    unsafe_skip_quorum_check: bool = False
    # 2PC knobs
    lock_wait_timeout_ms: float = 1000.0
    # Engine-level default transaction deadline (None = no deadline)
    default_deadline_ms: Optional[float] = None
    # Replica-side orphan recovery: accepted options still pending after this
    # long trigger the status-round termination protocol (None = disabled).
    option_ttl_ms: Optional[float] = None
    # Replica-side anti-entropy: periodic digest exchange repairing decision
    # broadcasts lost to partitions/loss (None = disabled).
    anti_entropy_interval_ms: Optional[float] = None

    # -- uniform config API (see repro.harness.overrides) ---------------
    def to_dict(self):
        from repro.harness.overrides import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_overrides(cls, overrides, base=None):
        from repro.harness.overrides import config_from_overrides

        return config_from_overrides(base if base is not None else cls(), overrides)

    def with_overrides(self, overrides):
        from repro.harness.overrides import config_from_overrides

        return config_from_overrides(self, overrides)


class Cluster:
    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        if self.config.engine not in ("mdcc", "twopc"):
            raise ValueError(f"unknown engine {self.config.engine!r}")
        self.sim = build_simulator(
            seed=self.config.seed, backend=self.config.backend
        )
        self.topology = self.config.topology
        self.latency = LatencyModel(self.topology, jitter_sigma=self.config.jitter_sigma)
        self.network = Network(
            self.sim,
            self.topology,
            latency=self.latency,
            loss_probability=self.config.loss_probability,
            batch_delivery=self.config.delivery_batching,
        )
        self.storage_nodes: Dict[str, StorageNode] = {}
        self.coordinators: Dict[str, object] = {}
        self._session_counters: Dict[str, int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        replica_ids: List[str] = []
        for dc in self.topology:
            node = StorageNode(
                node_id=f"store:{dc.name}",
                datacenter=dc,
                sim=self.sim,
                default_value=self.config.default_value,
                wal_sync_delay_ms=self.config.wal_sync_delay_ms,
                wal_batch_window_ms=self.config.wal_batch_window_ms,
            )
            self.network.register(node)
            self.storage_nodes[dc.name] = node
            replica_ids.append(node.node_id)
        self.replica_ids = replica_ids

        self.replicas = {}
        if self.config.engine == "mdcc":
            for dc in self.topology:
                self.replicas[dc.name] = MdccReplica(
                    self.storage_nodes[dc.name],
                    option_ttl_ms=self.config.option_ttl_ms,
                    peer_ids=replica_ids,
                    anti_entropy_interval_ms=self.config.anti_entropy_interval_ms,
                )
            engine_config = MdccConfig(
                use_fast_path=self.config.use_fast_path,
                default_deadline_ms=self.config.default_deadline_ms,
                optimistic_abort=self.config.optimistic_abort,
                unsafe_skip_quorum_check=self.config.unsafe_skip_quorum_check,
            )
            for dc in self.topology:
                self.coordinators[dc.name] = MdccCoordinator(
                    node_id=f"coord:{dc.name}",
                    datacenter=dc,
                    sim=self.sim,
                    network=self.network,
                    replica_ids=replica_ids,
                    config=engine_config,
                )
        else:
            for dc in self.topology:
                TwoPcReplica(
                    self.storage_nodes[dc.name],
                    replica_ids,
                    lock_wait_timeout_ms=self.config.lock_wait_timeout_ms,
                )
            twopc_config = TwoPcConfig(default_deadline_ms=self.config.default_deadline_ms)
            for dc in self.topology:
                self.coordinators[dc.name] = TwoPcCoordinator(
                    node_id=f"coord:{dc.name}",
                    datacenter=dc,
                    sim=self.sim,
                    network=self.network,
                    replica_ids=replica_ids,
                    config=twopc_config,
                )

    # ------------------------------------------------------------------
    def coordinator(self, dc_name: str):
        return self.coordinators[dc_name]

    def crash_coordinator(self, dc_name: str) -> None:
        """Fail-stop the coordinator in one data center (MDCC engine)."""
        coordinator = self.coordinators[dc_name]
        if not hasattr(coordinator, "crash"):
            raise RuntimeError(f"engine {self.config.engine!r} has no crash support")
        coordinator.crash()

    def crash_replica(self, dc_name: str) -> None:
        """Fail-stop the storage replica in one data center.

        The node neither receives nor sends from now on; the surviving
        replicas continue as an n-1 cluster (fast quorum of 5 is 4, so one
        replica crash leaves commits reachable)."""
        self.storage_nodes[dc_name].crash()

    def next_session_id(self, dc_name: str) -> str:
        """Mint a cluster-unique session id, stable across runs.

        Per-DC counters rather than a global one so the id stream of one
        DC's sessions does not depend on the construction order of other
        DCs' sessions."""
        n = self._session_counters.get(dc_name, 0)
        self._session_counters[dc_name] = n + 1
        return f"{dc_name}/s{n}"

    def storage_node(self, dc_name: str) -> StorageNode:
        return self.storage_nodes[dc_name]

    def load(self, items: Dict[str, object]) -> None:
        """Install initial values at every replica (a consistent load phase)."""
        for node in self.storage_nodes.values():
            node.store.load(dict(items))

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def settle(self, duration_ms: float = 2_000.0) -> None:
        """Run background daemons (anti-entropy) for ``duration_ms`` more.

        ``run()`` drains foreground work only; after fault-heavy runs, call
        ``settle`` to give the repair daemons time to converge the replicas,
        then assert on state."""
        self.sim.run(until=self.sim.now + duration_ms)
        self.sim.run()

    @property
    def datacenter_names(self) -> List[str]:
        return [dc.name for dc in self.topology]
