"""Simulated-time spans: named intervals of virtual time, with nesting.

A :class:`Span` covers ``[start_ms, end_ms]`` of *simulated* time and is
tagged with a category (``"stage"``, ``"paxos"``, ``"wal"``, ``"message"``,
…), a name, and a *track* — the logical thread it belongs to (a transaction
id, a node id, a WAL).  Spans on the same track nest: the tracer assigns
each span its depth from the track's open-span stack, so a WAL sync opened
inside a Paxos round inside a transaction stage renders as a proper
flame-graph hierarchy in Perfetto and attributes correctly in the profiler
(innermost wins).

The module is dependency-free; :class:`~repro.obs.events.Tracer` owns the
begin/end lifecycle and feeds finished spans to sinks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Span:
    """One interval of simulated time on one track."""

    __slots__ = ("category", "name", "track", "start_ms", "end_ms", "depth", "fields", "pid")

    def __init__(
        self,
        category: str,
        name: str,
        track: str,
        start_ms: float,
        end_ms: Optional[float] = None,
        depth: int = 0,
        fields: Optional[Dict[str, Any]] = None,
        pid: int = 0,
    ) -> None:
        self.category = category
        self.name = name
        self.track = track
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.depth = depth
        self.fields = fields if fields is not None else {}
        self.pid = pid

    @property
    def open(self) -> bool:
        return self.end_ms is None

    @property
    def duration_ms(self) -> float:
        """Span length; 0.0 while still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:
        end = f"{self.end_ms:.3f}" if self.end_ms is not None else "…"
        return (
            f"<Span {self.category}/{self.name} track={self.track!r} "
            f"[{self.start_ms:.3f}, {end}] depth={self.depth}>"
        )


class SpanStacks:
    """Per-track stacks of open spans; assigns nesting depth.

    ``open`` pushes a span and returns the depth it should carry;
    ``close`` pops it (tolerating out-of-order closes: the span is removed
    wherever it sits, so one leaked span cannot corrupt a whole track).
    """

    def __init__(self) -> None:
        self._stacks: Dict[str, List[Span]] = {}

    def open(self, span: Span) -> int:
        stack = self._stacks.setdefault(span.track, [])
        depth = len(stack)
        stack.append(span)
        return depth

    def close(self, span: Span) -> None:
        stack = self._stacks.get(span.track)
        if not stack:
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break
        if not stack:
            del self._stacks[span.track]

    def depth(self, track: str) -> int:
        return len(self._stacks.get(track, ()))

    def open_spans(self) -> List[Span]:
        return [span for stack in self._stacks.values() for span in stack]
