"""The flight recorder: a bounded in-memory ring of events and spans.

Always-on tracing must not grow without bound, so the recorder keeps only
the last ``capacity`` records (``collections.deque`` eviction) and counts
what it dropped.  Its :meth:`FlightRecorder.digest` is the replay-
determinism oracle: two runs with the same seed must produce byte-identical
digests, which pins down *every* instrumented decision in the stack —
message timing, vote order, WAL syncs — far more tightly than comparing
final aggregates.

Transaction ids come from a process-global counter (``repro.ops``), so a
second run in the same process sees different raw ids; the digest
canonicalises every ``<word>-<number>`` identifier to its first-appearance
ordinal, making it a function of run *behaviour* only.
"""

from __future__ import annotations

import hashlib
import re
from collections import deque
from typing import Any, Deque, Dict, List, Tuple, Union

from repro.obs.events import Sink, TraceEvent
from repro.obs.metrics import current as current_metrics
from repro.obs.spans import Span

Record = Union[TraceEvent, Span]

#: Counter-minted identifiers (``tx-17``, ``pay-3``, ``order-42``) that the
#: digest renames to first-appearance ordinals.
_COUNTER_ID = re.compile(r"\b([A-Za-z]+)-(\d+)\b")


class FlightRecorder(Sink):
    """Ring-buffer sink retaining the most recent ``capacity`` records."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: Deque[Record] = deque(maxlen=capacity)
        self.seen_events = 0
        self.seen_spans = 0

    # -- Sink ----------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        self.seen_events += 1
        if len(self._records) == self.capacity:
            self._note_eviction()
        self._records.append(event)

    def on_span(self, span: Span) -> None:
        self.seen_spans += 1
        if len(self._records) == self.capacity:
            self._note_eviction()
        self._records.append(span)

    @staticmethod
    def _note_eviction() -> None:
        # Looked up lazily, only on the (rare) eviction path, so the
        # recorder's hot append stays a deque push.
        metrics = current_metrics()
        if metrics.enabled:
            metrics.inc("obs.recorder_evictions")

    # -- Introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def seen(self) -> int:
        return self.seen_events + self.seen_spans

    @property
    def evicted(self) -> int:
        return self.seen - len(self._records)

    def records(self) -> List[Record]:
        """Retained records in arrival order (spans arrive at their end)."""
        return list(self._records)

    def events(self) -> List[TraceEvent]:
        return [r for r in self._records if isinstance(r, TraceEvent)]

    def spans(self) -> List[Span]:
        return [r for r in self._records if isinstance(r, Span)]

    def categories(self) -> List[str]:
        return sorted({r.category for r in self._records})

    def clear(self) -> None:
        self._records.clear()
        self.seen_events = 0
        self.seen_spans = 0

    # -- Determinism digest --------------------------------------------
    def digest(self) -> str:
        """SHA-256 over the canonical serialisation of the retained records.

        Same seed ⇒ same digest, independent of process history (see module
        docstring) and of which simulator pid emitted what.
        """
        renames: Dict[str, str] = {}

        def canon_id(match: "re.Match[str]") -> str:
            token = match.group(0)
            renamed = renames.get(token)
            if renamed is None:
                renamed = f"{match.group(1)}#{len(renames)}"
                renames[token] = renamed
            return renamed

        def canon(value: Any) -> str:
            if isinstance(value, float):
                text = f"{value:.6f}"
            else:
                text = str(value)
            return _COUNTER_ID.sub(canon_id, text)

        hasher = hashlib.sha256()
        for record in self._records:
            if isinstance(record, TraceEvent):
                parts = ["E", canon(record.time_ms), record.category, record.name]
            else:
                parts = [
                    "S",
                    canon(record.start_ms),
                    canon(record.end_ms if record.end_ms is not None else -1.0),
                    record.category,
                    record.name,
                    canon(record.track),
                    str(record.depth),
                ]
            parts.extend(f"{key}={canon(record.fields[key])}" for key in sorted(record.fields))
            hasher.update("|".join(parts).encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()
