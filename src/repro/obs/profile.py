"""The simulated-time profiler: where did the milliseconds go?

A :class:`SpanAggregator` sink collects every finished span of a run; from
those, :meth:`SpanAggregator.profile` answers two different questions:

* **span statistics** per category — how many spans, total/mean/p99 span
  duration.  Spans overlap freely (hundreds of transactions are in flight
  at once), so these totals routinely exceed the run duration; they measure
  *work*, not wall time.
* **attributed time** — a partition of the run's simulated timeline
  ``[0, T]`` where every instant is charged to exactly one category: the
  highest-priority category with a span covering it (innermost activity
  wins: a WAL sync inside a Paxos round charges to ``wal``), and ``idle``
  when nothing is open.  Attributed totals sum to the run duration by
  construction, which is what makes the resulting table read like a
  profiler's "% of run" column.

Rendering is plain aligned text with a ``#`` bar per row, in the same
self-contained ASCII style as :mod:`repro.harness.ascii_plot` (the module
stays dependency-free so ``obs`` sits below the harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import Sink
from repro.obs.spans import Span

#: Attribution priority, innermost first: when spans of several categories
#: cover the same instant, the earliest category in this tuple is charged.
ATTRIBUTION_PRIORITY: Tuple[str, ...] = (
    "wal",
    "paxos",
    "message",
    "stage",
    "admission",
    "tx",
    "metric",
    "sim",
)

IDLE = "idle"


@dataclass
class CategoryProfile:
    category: str
    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    attributed_ms: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def p99_ms(self) -> float:
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        index = min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.5))
        return ordered[index]


@dataclass
class ProfileReport:
    """One simulator's profile: per-category stats + the time attribution."""

    pid: int
    duration_ms: float
    categories: List[CategoryProfile]
    idle_ms: float

    @property
    def attributed_total_ms(self) -> float:
        return self.idle_ms + sum(c.attributed_ms for c in self.categories)


class SpanAggregator(Sink):
    """Collects spans per simulator (pid) for profiling."""

    def __init__(self) -> None:
        self._spans: Dict[int, List[Span]] = {}

    def on_span(self, span: Span) -> None:
        self._spans.setdefault(span.pid, []).append(span)

    def pids(self) -> List[int]:
        return sorted(self._spans)

    def spans(self, pid: int) -> List[Span]:
        return list(self._spans.get(pid, ()))

    # ------------------------------------------------------------------
    def profile(self, pid: int, duration_ms: Optional[float] = None) -> ProfileReport:
        """Build the report for one simulator.

        ``duration_ms`` defaults to the latest span end seen — the horizon
        the attribution partitions.  Pass the run's own duration to include
        trailing idle time.
        """
        spans = [s for s in self._spans.get(pid, ()) if s.end_ms is not None]
        profiles: Dict[str, CategoryProfile] = {}
        for span in spans:
            profile = profiles.get(span.category)
            if profile is None:
                profile = profiles[span.category] = CategoryProfile(span.category)
            d = span.duration_ms
            profile.count += 1
            profile.total_ms += d
            profile.durations.append(d)
            if d > profile.max_ms:
                profile.max_ms = d

        horizon = max((s.end_ms for s in spans), default=0.0)
        if duration_ms is not None:
            horizon = max(horizon, duration_ms)
        attributed, idle_ms = _attribute(spans, horizon)
        for category, ms in attributed.items():
            profiles[category].attributed_ms = ms

        ordered = sorted(
            profiles.values(), key=lambda p: (-p.attributed_ms, -p.total_ms, p.category)
        )
        return ProfileReport(pid=pid, duration_ms=horizon, categories=ordered, idle_ms=idle_ms)


def _attribute(spans: List[Span], horizon: float) -> Tuple[Dict[str, float], float]:
    """Partition ``[0, horizon]`` across categories by innermost priority.

    Sweep line over span boundaries keeping one open-interval counter per
    category; each elementary interval is charged to the highest-priority
    category with a positive counter, or to idle.
    """
    if horizon <= 0.0:
        return {}, 0.0
    rank = {category: i for i, category in enumerate(ATTRIBUTION_PRIORITY)}
    boundaries: List[Tuple[float, int, int]] = []  # (time, +1/-1, category rank)
    extra_rank = len(rank)
    for span in spans:
        r = rank.get(span.category)
        if r is None:  # unknown categories attribute after the known ones
            r = rank[span.category] = extra_rank
            extra_rank += 1
        start = min(span.start_ms, horizon)
        end = min(span.end_ms, horizon)
        if end <= start:
            continue
        boundaries.append((start, +1, r))
        boundaries.append((end, -1, r))
    categories_by_rank = sorted(rank, key=rank.get)
    totals: Dict[str, float] = {}
    idle_ms = 0.0
    if not boundaries:
        return totals, horizon

    boundaries.sort(key=lambda b: b[0])
    open_counts = [0] * len(categories_by_rank)
    cursor = 0.0
    index = 0
    n = len(boundaries)
    while index < n:
        time = boundaries[index][0]
        if time > cursor:
            width = time - cursor
            charged = _innermost(open_counts)
            if charged is None:
                idle_ms += width
            else:
                category = categories_by_rank[charged]
                totals[category] = totals.get(category, 0.0) + width
            cursor = time
        while index < n and boundaries[index][0] == time:
            _t, delta, r = boundaries[index]
            open_counts[r] += delta
            index += 1
    if horizon > cursor:
        idle_ms += horizon - cursor
    return totals, idle_ms


def _innermost(open_counts: List[int]) -> Optional[int]:
    for r, count in enumerate(open_counts):
        if count > 0:
            return r
    return None


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_profile(
    report: ProfileReport, width: int = 28, top: Optional[int] = None
) -> str:
    """The "where did the milliseconds go" table for one simulator.

    Two percentage columns answer different questions: ``% of run`` is the
    attributed share of the timeline (rows sum to 100%), ``% work`` is the
    category's share of total span-time — overlap-inclusive, so it surfaces
    the busiest layer even when an outer category absorbs the attribution.
    ``top`` keeps only the N largest categories (by attributed time, the
    table's sort order) and folds the rest into one summary row.
    """
    title = (
        f"simulated-time profile — simulator #{report.pid}, "
        f"{report.duration_ms:.1f} ms simulated"
    )
    header = (
        f"{'category':<10} {'spans':>7} {'total ms':>11} {'mean ms':>9} "
        f"{'p99 ms':>9} {'attrib ms':>11} {'% of run':>8} {'% work':>7}  "
    )
    lines = [title, "-" * len(header), header, "-" * len(header)]
    duration = report.duration_ms or 1.0
    work_total = sum(c.total_ms for c in report.categories) or 1.0
    categories = list(report.categories)
    folded = 0
    if top is not None and top >= 0 and len(categories) > top:
        folded = len(categories) - top
        categories = categories[:top]
    rows = categories + [CategoryProfile(IDLE, attributed_ms=report.idle_ms)]
    for profile in rows:
        pct = 100.0 * profile.attributed_ms / duration
        bar = "#" * int(round(pct / 100.0 * width))
        if profile.category == IDLE:
            stats = f"{'-':>7} {'-':>11} {'-':>9} {'-':>9}"
            work = f"{'-':>7}"
        else:
            stats = (
                f"{profile.count:>7} {profile.total_ms:>11.1f} "
                f"{profile.mean_ms:>9.2f} {profile.p99_ms():>9.2f}"
            )
            work = f"{100.0 * profile.total_ms / work_total:>6.1f}%"
        lines.append(
            f"{profile.category:<10} {stats} {profile.attributed_ms:>11.1f} "
            f"{pct:>7.1f}% {work}  {bar}"
        )
    if folded:
        hidden = report.categories[len(categories):]
        hidden_ms = sum(c.attributed_ms for c in hidden)
        lines.append(
            f"{'(+%d more)' % folded:<10} {'':>7} {'':>11} {'':>9} {'':>9} "
            f"{hidden_ms:>11.1f} {100.0 * hidden_ms / duration:>7.1f}%"
        )
    lines.append("-" * len(header))
    total = report.attributed_total_ms
    lines.append(
        f"{'total':<10} {'':>7} {'':>11} {'':>9} {'':>9} {total:>11.1f} "
        f"{100.0 * total / duration:>7.1f}%"
    )
    return "\n".join(lines)
