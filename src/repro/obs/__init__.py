"""``repro.obs`` — system-wide tracing, span profiling, flight recording.

The observability subsystem every other layer reports into:

* :mod:`~repro.obs.events` — the structured event bus (`TraceEvent`,
  `Tracer`, sinks) with a no-op fast path when tracing is off;
* :mod:`~repro.obs.spans` — simulated-time spans with per-track nesting;
* :mod:`~repro.obs.recorder` — the bounded flight recorder and its
  deterministic digest;
* :mod:`~repro.obs.export` — JSONL and Chrome ``trace_event`` export
  (opens in ``chrome://tracing`` / Perfetto);
* :mod:`~repro.obs.profile` — the "where did the milliseconds go"
  simulated-time profiler.

Typical use from tests or drivers::

    from repro import obs

    recorder = obs.FlightRecorder()
    with obs.capture(recorder):
        result = run_experiment(config)   # every Simulator created inside
                                          # the block traces into recorder
    obs.write_chrome_trace("trace.json", recorder)

See ``docs/observability.md`` for the category reference and sink API.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from repro.obs.events import (
    CATEGORIES,
    DEFAULT_CATEGORIES,
    NULL_TRACER,
    Sink,
    TraceEvent,
    Tracer,
    capture_active,
    emit_to_capture,
    events_from_transaction,
    install,
    installed_categories,
    new_tracer,
    next_pid,
    uninstall,
)
from repro.obs.export import (
    chrome_trace,
    record_from_dict,
    record_to_dict,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import ProfileReport, SpanAggregator, render_profile
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span

__all__ = [
    "CATEGORIES",
    "DEFAULT_CATEGORIES",
    "NULL_TRACER",
    "FlightRecorder",
    "ProfileReport",
    "Sink",
    "Span",
    "SpanAggregator",
    "TraceEvent",
    "Tracer",
    "capture",
    "capture_active",
    "chrome_trace",
    "emit_to_capture",
    "events_from_transaction",
    "install",
    "installed_categories",
    "new_tracer",
    "next_pid",
    "record_from_dict",
    "record_to_dict",
    "render_profile",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]


@contextmanager
def capture(
    *sinks: Sink, categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES
) -> Iterator[None]:
    """Trace every simulator created inside the block into ``sinks``.

    ``categories`` defaults to everything except per-dispatch ``sim``
    events; pass ``categories=None`` for the full firehose.
    """
    install(sinks, categories=categories)
    try:
        yield
    finally:
        uninstall()
