"""``repro.obs`` — system-wide tracing, span profiling, flight recording.

The observability subsystem every other layer reports into:

* :mod:`~repro.obs.events` — the structured event bus (`TraceEvent`,
  `Tracer`, sinks) with a no-op fast path when tracing is off;
* :mod:`~repro.obs.spans` — simulated-time spans with per-track nesting;
* :mod:`~repro.obs.recorder` — the bounded flight recorder and its
  deterministic digest;
* :mod:`~repro.obs.export` — JSONL and Chrome ``trace_event`` export
  (opens in ``chrome://tracing`` / Perfetto);
* :mod:`~repro.obs.profile` — the "where did the milliseconds go"
  simulated-time profiler;
* :mod:`~repro.obs.metrics` — the counters/gauges/histograms facade with
  the same no-op fast path and process-wide install discipline.

Typical use from tests or drivers::

    from repro import obs

    recorder = obs.FlightRecorder()
    with obs.capture(recorder):
        result = run_experiment(config)   # every Simulator created inside
                                          # the block traces into recorder
    obs.write_chrome_trace("trace.json", recorder)

See ``docs/observability.md`` for the category reference and sink API.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from repro.obs.events import (
    CATEGORIES,
    DEFAULT_CATEGORIES,
    NULL_TRACER,
    Sink,
    TraceEvent,
    Tracer,
    capture_active,
    emit_to_capture,
    events_from_transaction,
    install,
    installed_categories,
    new_tracer,
    next_pid,
    uninstall,
)
from repro.obs import metrics as _metrics_module
from repro.obs.export import (
    chrome_trace,
    record_from_dict,
    record_to_dict,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    ValueHist,
)
from repro.obs.metrics import active as metrics_active
from repro.obs.metrics import current as current_metrics
from repro.obs.metrics import install as install_metrics
from repro.obs.metrics import uninstall as uninstall_metrics
from repro.obs.profile import ProfileReport, SpanAggregator, render_profile
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span

__all__ = [
    "CATEGORIES",
    "DEFAULT_CATEGORIES",
    "NULL_METRICS",
    "NULL_TRACER",
    "FlightRecorder",
    "MetricsRegistry",
    "ObsSession",
    "ProfileReport",
    "Sink",
    "Span",
    "SpanAggregator",
    "TraceEvent",
    "Tracer",
    "ValueHist",
    "capture",
    "capture_active",
    "chrome_trace",
    "collect_metrics",
    "current_metrics",
    "emit_to_capture",
    "events_from_transaction",
    "install",
    "install_metrics",
    "installed_categories",
    "metrics_active",
    "new_tracer",
    "next_pid",
    "record_from_dict",
    "record_to_dict",
    "render_profile",
    "session",
    "uninstall",
    "uninstall_metrics",
    "write_chrome_trace",
    "write_jsonl",
]


@contextmanager
def capture(
    *sinks: Sink, categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES
) -> Iterator[None]:
    """Trace every simulator created inside the block into ``sinks``.

    ``categories`` defaults to everything except per-dispatch ``sim``
    events; pass ``categories=None`` for the full firehose.
    """
    install(sinks, categories=categories)
    try:
        yield
    finally:
        uninstall()


@contextmanager
def collect_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Collect metrics from every simulator created inside the block.

    Yields the registry (a fresh one when none is passed)::

        with obs.collect_metrics() as metrics:
            result = run_experiment(config)
        print(metrics.snapshot()["counters"]["sim.events"])
    """
    registry = registry if registry is not None else MetricsRegistry()
    _metrics_module.install(registry)
    try:
        yield registry
    finally:
        _metrics_module.uninstall()


class ObsSession:
    """Handles yielded by :func:`session`: whatever was installed."""

    def __init__(self, sinks, metrics, history) -> None:
        self.sinks = tuple(sinks)
        #: The installed :class:`MetricsRegistry`, or None.
        self.metrics: Optional[MetricsRegistry] = metrics
        #: The installed ``repro.check.history.HistoryRecorder``, or None.
        self.history = history

    def __repr__(self) -> str:
        parts = [f"sinks={len(self.sinks)}"]
        if self.metrics is not None:
            parts.append("metrics")
        if self.history is not None:
            parts.append("history")
        return f"<ObsSession {' '.join(parts)}>"


@contextmanager
def session(
    *sinks: Sink,
    categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES,
    metrics=None,
    history: bool = False,
) -> Iterator[ObsSession]:
    """One process-wide observability session.

    Unifies the three install patterns that previously had to be stacked
    by hand — event capture (:func:`capture`), metrics collection
    (:func:`collect_metrics`), and client-history recording
    (``HistoryRecorder().attach(sim)``)::

        with obs.session(recorder, metrics=True, history=True) as s:
            run_experiment(config)
        s.metrics.snapshot()
        s.history.history().check(...)

    ``metrics`` is ``True`` for a fresh :class:`MetricsRegistry`, an
    existing registry to install, or ``None``/``False`` for no metrics.
    ``history=True`` adds a ``HistoryRecorder`` to the capture sinks (the
    ``history`` category is force-included so the recorder actually sees
    its events).  Everything installed is uninstalled on exit, in reverse
    order.  Per-simulator attachment (``HistoryRecorder().attach(sim)``)
    remains available for processes hosting several simulators at once,
    e.g. the scale shards.
    """
    capture_sinks = list(sinks)
    history_recorder = None
    if history:
        from repro.check.history import HistoryRecorder

        history_recorder = HistoryRecorder()
        capture_sinks.append(history_recorder)
        if categories is not None:
            categories = frozenset(categories) | {"history"}
    registry: Optional[MetricsRegistry] = None
    if metrics is True:
        registry = MetricsRegistry()
    elif metrics:
        registry = metrics
    if not capture_sinks and registry is None:
        raise ValueError(
            "obs.session(...) would install nothing: pass sinks, "
            "metrics=..., and/or history=True"
        )
    if capture_sinks:
        install(capture_sinks, categories=categories)
    if registry is not None:
        _metrics_module.install(registry)
    try:
        yield ObsSession(capture_sinks, registry, history_recorder)
    finally:
        if registry is not None:
            _metrics_module.uninstall()
        if capture_sinks:
            uninstall()
