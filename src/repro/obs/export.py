"""Trace export: JSONL for tooling, Chrome ``trace_event`` for humans.

The Chrome format (one JSON object with a ``traceEvents`` array) opens
directly in ``chrome://tracing`` and https://ui.perfetto.dev: spans become
complete (``"ph": "X"``) events laid out per track, instants become
``"ph": "i"`` markers, and metadata events name each process/track so the
UI shows ``tx-17`` or ``wal:store:ireland`` instead of bare thread ids.
Timestamps are microseconds in that format; ours are simulated
milliseconds, hence the ×1000.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.obs.events import TraceEvent
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import Span

Record = Union[TraceEvent, Span]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def record_to_dict(record: Record) -> Dict[str, Any]:
    """Flat JSON form of one record (the JSONL schema)."""
    fields = {key: _json_safe(value) for key, value in record.fields.items()}
    if isinstance(record, TraceEvent):
        return {
            "type": "event",
            "time_ms": record.time_ms,
            "category": record.category,
            "name": record.name,
            "pid": record.pid,
            "fields": fields,
        }
    return {
        "type": "span",
        "start_ms": record.start_ms,
        "end_ms": record.end_ms,
        "category": record.category,
        "name": record.name,
        "track": record.track,
        "depth": record.depth,
        "pid": record.pid,
        "fields": fields,
    }


def record_from_dict(payload: Dict[str, Any]) -> Record:
    """Inverse of :func:`record_to_dict` (the worker→parent forwarding wire
    format of the parallel sweep executor)."""
    if payload["type"] == "event":
        return TraceEvent(
            time_ms=payload["time_ms"],
            category=payload["category"],
            name=payload["name"],
            fields=dict(payload.get("fields", {})),
            pid=payload.get("pid", 0),
        )
    return Span(
        category=payload["category"],
        name=payload["name"],
        track=payload.get("track", ""),
        start_ms=payload["start_ms"],
        end_ms=payload.get("end_ms"),
        depth=payload.get("depth", 0),
        fields=dict(payload.get("fields", {})),
        pid=payload.get("pid", 0),
    )


def write_jsonl(path: str, records: Iterable[Record]) -> int:
    """One record per line; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(records: Iterable[Record]) -> Dict[str, Any]:
    """Build the Chrome ``trace_event`` document for ``records``.

    Tracks map to Chrome *threads*: each distinct (pid, track) pair gets a
    stable small tid (first-appearance order) plus a ``thread_name``
    metadata event.  Instants without a track land on tid 0.
    """
    tids: Dict[Tuple[int, str], int] = {}
    next_tid: Dict[int, int] = {}
    trace_events: List[Dict[str, Any]] = []
    pids = set()

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = next_tid.get(pid, 0) + 1
            next_tid[pid] = tid
            tids[key] = tid
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    for record in records:
        pids.add(record.pid)
        args = {key: _json_safe(value) for key, value in record.fields.items()}
        if isinstance(record, TraceEvent):
            trace_events.append(
                {
                    "name": record.name,
                    "cat": record.category,
                    "ph": "i",
                    "ts": record.time_ms * 1000.0,
                    "pid": record.pid,
                    "tid": 0,
                    "s": "t",
                    "args": args,
                }
            )
        else:
            end_ms = record.end_ms if record.end_ms is not None else record.start_ms
            args["track"] = record.track
            trace_events.append(
                {
                    "name": record.name,
                    "cat": record.category,
                    "ph": "X",
                    "ts": record.start_ms * 1000.0,
                    "dur": (end_ms - record.start_ms) * 1000.0,
                    "pid": record.pid,
                    "tid": tid_for(record.pid, record.track),
                    "args": args,
                }
            )
    for pid in sorted(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"simulator-{pid}"},
            }
        )
    # Chrome sorts by ts itself, but a sorted file diffs better.
    trace_events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["name"]))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, recorder: FlightRecorder) -> Dict[str, Any]:
    """Write the recorder's contents as a Chrome trace; returns the document."""
    document = chrome_trace(recorder.records())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return document
