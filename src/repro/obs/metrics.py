"""The system-wide metrics facade: counters, gauges, labelled histograms.

This module is the quantitative half of the observability stack.  The
event bus (:mod:`repro.obs.events`) answers "what happened, in order";
the metrics layer answers "how much, how often, how slow" — cheaply
enough to leave the instrumentation compiled in everywhere.

Design mirrors the tracer exactly:

* **No-op fast path.**  With no registry installed, every instrumented
  hot path (kernel dispatch, message send, WAL append) pays one
  attribute load and one branch: components hold a reference to
  :data:`NULL_METRICS`, whose ``enabled`` is False, and guard with
  ``if metrics.enabled:`` before building any label kwargs.
* **Global install.**  Experiments build their simulators deep inside
  the harness, so callers install a registry process-wide
  (:func:`install`); every :class:`~repro.sim.kernel.Simulator` created
  while it is installed binds it at construction.
  :func:`repro.obs.collect_metrics` wraps install/uninstall as a
  context manager.
* **Labels.**  Every instrument takes ``**labels`` (``kind=``, ``node=``,
  ``path=``, ``dc=`` …); a labelled family renders as
  ``name{k=v,…}`` with keys sorted, so snapshots and digests are
  deterministic.

Values are *simulated-time* quantities (latencies in simulated ms,
counts of simulated events); the registry itself never reads a wall
clock — harness self-observability lives in
:mod:`repro.harness.perf` instead.

Like :mod:`repro.obs.events`, this module imports nothing from the rest
of ``repro`` so any layer can use it without cycles.  The historical
``repro.stats.metrics.MetricsRegistry`` was promoted here; the old
import path remains as a shim.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class ValueHist:
    """A histogram of observed values (full-sample; simulation-sized runs).

    API-compatible with :class:`repro.stats.histogram.LatencyCdf` —
    ``update``/``extend``/``count``/``percentile``/``mean`` — plus a
    JSON-safe :meth:`summary`.
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[float] = []

    def update(self, value: float) -> None:
        self._samples.append(value)

    def extend(self, values) -> None:
        self._samples.extend(values)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(position))
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        return max(self._samples) if self._samples else math.nan

    def sum(self) -> float:
        return sum(self._samples)

    def summary(self) -> Dict[str, float]:
        """JSON-safe digest of the distribution (the snapshot shape)."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }


def _render(name: str, labels: Dict[str, Any]) -> str:
    """Canonical series name: ``name`` or ``name{k=v,…}`` (keys sorted).

    The single-label case — the overwhelming majority of hot-path calls
    (``kind=``, ``node=``) — skips the sort and generator machinery.
    """
    if not labels:
        return name
    if len(labels) == 1:
        for k, v in labels.items():
            return f"{name}{{{k}={v}}}"
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges, and labelled histograms for one collection scope.

    Promoted from ``repro.stats.metrics``: the legacy per-run API
    (``increment``/``observe_latency``/``record_point``) is preserved —
    experiment runners still build one registry per run — and the
    labelled facade (:meth:`inc`/:meth:`set_gauge`/:meth:`max_gauge`/
    :meth:`observe`) is what the system-wide instrumentation uses
    through :func:`install`.
    """

    #: Class attribute so the guard ``if metrics.enabled:`` is a plain
    #: attribute load on both the real registry and :data:`NULL_METRICS`.
    enabled: bool = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(int)
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, ValueHist] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self._tracer = None
        self._clock: Callable[[], float] = lambda: 0.0

    # -- Observability adapter (legacy) ---------------------------------
    def bind_tracer(self, tracer, clock: Callable[[], float]) -> None:
        """Mirror counter increments and histogram samples into the obs
        event stream (category ``metric``), timestamped by ``clock``.

        The registry has no time source of its own, hence the explicit
        clock (normally ``lambda: sim.now``); unbound registries behave
        exactly as before.
        """
        self._tracer = tracer
        self._clock = clock

    # -- Counters -------------------------------------------------------
    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _render(name, labels) if labels else name
        self._counters[key] += amount
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(self._clock(), "metric", key, delta=amount)

    def increment(self, name: str, amount: int = 1) -> None:
        """Legacy unlabelled spelling of :meth:`inc`."""
        self.inc(name, amount)

    def counter(self, name: str, **labels: Any) -> float:
        return self._counters.get(_render(name, labels), 0)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def counter_family(self, name: str) -> float:
        """Sum of a counter family across all label combinations."""
        prefix = name + "{"
        return sum(
            v for k, v in self._counters.items() if k == name or k.startswith(prefix)
        )

    # -- Gauges ---------------------------------------------------------
    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[_render(name, labels)] = value

    def max_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge to ``max(current, value)`` — high-water marks."""
        key = _render(name, labels) if labels else name
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value

    def gauge(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(_render(name, labels))

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def gauge_family(self, name: str) -> float:
        """Sum of a gauge family across all label combinations."""
        prefix = name + "{"
        return sum(
            v for k, v in self._gauges.items() if k == name or k.startswith(prefix)
        )

    # -- Histograms -----------------------------------------------------
    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _render(name, labels) if labels else name
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = ValueHist()
        hist.update(value)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(self._clock(), "metric", key, value_ms=value)

    def hist(self, name: str, **labels: Any) -> ValueHist:
        key = _render(name, labels)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = ValueHist()
        return hist

    # Legacy latency-collector spellings -------------------------------
    def latency(self, name: str) -> ValueHist:
        return self.hist(name)

    def observe_latency(self, name: str, value_ms: float) -> None:
        self.observe(name, value_ms)

    def latency_names(self) -> List[str]:
        return sorted(self._hists)

    # -- Time/value series (legacy) -------------------------------------
    def record_point(self, name: str, x: float, y: float) -> None:
        self._series[name].append((x, y))

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, []))

    # -- Whole-registry views -------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot of everything collected (the BENCH shape)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._hists[k].summary() for k in sorted(self._hists)
            },
        }

    def digest(self) -> str:
        """Canonical text rendering (used by determinism tests)."""
        parts = [f"{k}={v}" for k, v in sorted(self._counters.items())]
        parts.extend(f"{k}~{v:.6f}" for k, v in sorted(self._gauges.items()))
        for name in self.latency_names():
            hist = self._hists[name]
            parts.append(
                f"{name}:n={hist.count},p50={hist.percentile(50):.6f},"
                f"p99={hist.percentile(99):.6f}"
            )
        for name in sorted(self._series):
            points = ";".join(f"{x:.6f},{y:.6f}" for x, y in self._series[name])
            parts.append(f"{name}:[{points}]")
        return "|".join(parts)


class NullMetrics(MetricsRegistry):
    """The permanently disabled registry every component starts with.

    All mutators are overridden to plain ``pass`` so a call that slips
    through an unguarded site is still safe — but call sites should
    guard with ``if metrics.enabled:`` and never pay the call at all.
    """

    enabled = False

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def max_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def record_point(self, name: str, x: float, y: float) -> None:
        pass


#: Shared disabled registry; the ``sim.metrics`` of every simulator built
#: while no collection is installed.
NULL_METRICS = NullMetrics()


# ----------------------------------------------------------------------
# Process-wide collection: one installed registry, bound by new simulators.
# ----------------------------------------------------------------------
_installed: Optional[MetricsRegistry] = None


def peak_rss_bytes() -> int:
    """Peak resident set size of the current process, in bytes (0 unknown).

    The harness-side memory gauge backing the traffic layer's
    "memory-lean" claim: the parallel executor samples it after every
    point (in the worker that ran it) and folds the high-water mark into
    ``sweep.peak_rss_bytes`` and the :class:`~repro.harness.perf
    .PerfReport`.  Wall-clock-style nondeterminism is fine here — like
    worker utilization, it never feeds rows or digests.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(usage) if sys.platform == "darwin" else int(usage) * 1024
    except (ImportError, ValueError, OSError):
        return 0


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Start a process-wide collection: every Simulator created from now
    on (and every harness-side instrument) records into ``registry``.
    One collection at a time, for the same reason obs captures are
    exclusive: nested scopes would silently cross-wire snapshots."""
    global _installed
    if _installed is not None:
        raise RuntimeError("a metrics collection is already installed")
    _installed = registry
    return registry


def uninstall() -> None:
    """Stop the collection.  Already-bound simulators keep their reference
    (their runs are usually over); new simulators bind NULL_METRICS."""
    global _installed
    _installed = None


def active() -> bool:
    return _installed is not None


def current() -> MetricsRegistry:
    """The installed registry, or :data:`NULL_METRICS` when none is."""
    registry = _installed
    return registry if registry is not None else NULL_METRICS
