"""The structured event bus at the bottom of the observability stack.

Everything observable in a run flows through a per-simulator
:class:`Tracer` as either an instant :class:`TraceEvent` or a
:class:`~repro.obs.spans.Span`.  Sinks (flight recorder, profiler, custom
test probes) subscribe to a tracer; instrumented call sites in the kernel,
network, engines, and storage emit through it.

The design constraint is the **no-op fast path**: tracing is off by default
and the instrumented hot paths (kernel dispatch, every message send) must
pay only an attribute load and a branch.  Call sites therefore guard with
``if tracer.enabled:`` before building any keyword arguments, and a
disabled tracer's methods return immediately.

Global capture
--------------
Experiments build their own :class:`~repro.sim.kernel.Simulator` deep
inside the harness, so the CLI cannot hand a tracer down.  Instead,
:func:`install` registers sinks process-wide; every simulator created while
a capture is installed binds them at construction (the kernel calls
:func:`new_tracer`).  :func:`repro.obs.capture` wraps install/uninstall as
a context manager.

This module imports nothing from the rest of ``repro`` — the bus is usable
from any layer without creating cycles.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.obs.spans import Span, SpanStacks


class TraceEvent:
    """One instant, structured observation: *at time t, in category c, name
    n happened, with these fields*."""

    __slots__ = ("time_ms", "category", "name", "fields", "pid")

    def __init__(
        self,
        time_ms: float,
        category: str,
        name: str,
        fields: Optional[Dict[str, Any]] = None,
        pid: int = 0,
    ) -> None:
        self.time_ms = time_ms
        self.category = category
        self.name = name
        self.fields = fields if fields is not None else {}
        self.pid = pid

    def __repr__(self) -> str:
        return f"<TraceEvent t={self.time_ms:.3f} {self.category}/{self.name} {self.fields!r}>"


class Sink:
    """Receives events and finished spans.  Subclass and override."""

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_span(self, span: Span) -> None:  # pragma: no cover - default no-op
        pass


#: Event categories emitted by the built-in instrumentation.
CATEGORIES: Tuple[str, ...] = (
    "sim",        # kernel event dispatch
    "message",    # network send / deliver / drop
    "paxos",      # ballot minting, prepare/accept rounds, votes, decisions
    "stage",      # transaction stage spans and the speculative guess
    "wal",        # WAL sync / group-commit durability windows
    "admission",  # admission-control admit / delay / reject
    "tx",         # transaction-level instants (submit, decide)
    "history",    # client-visible operation history (repro.check)
    "metric",     # MetricsRegistry counter/latency adapter
    "sweep",      # sweep executor point lifecycle (deterministic fields only)
    "progress",   # sweep wall-clock progress / stragglers (non-deterministic)
)

#: Default capture set: everything except per-dispatch kernel events (which
#: multiply the event volume without adding protocol insight) and wall-clock
#: ``progress`` events (which would break cross-run digest determinism).
#: Pass ``categories={"sim", "progress", ...}`` explicitly to include them.
DEFAULT_CATEGORIES: FrozenSet[str] = frozenset(
    c for c in CATEGORIES if c not in ("sim", "progress")
)


class Tracer:
    """Per-simulator event/span emitter with a cheap disabled path."""

    __slots__ = ("enabled", "pid", "categories", "_sinks", "_stacks")

    def __init__(self, pid: int = 0) -> None:
        self.enabled = False
        self.pid = pid
        self.categories: Optional[FrozenSet[str]] = None  # None = all
        self._sinks: List[Sink] = []
        self._stacks = SpanStacks()

    # -- wiring --------------------------------------------------------
    def add_sink(self, sink: Sink, categories: Optional[Iterable[str]] = None) -> Sink:
        """Attach ``sink`` and enable the tracer.

        ``categories`` narrows what this *tracer* emits; with several sinks
        the union of their category sets is used (None = everything).
        """
        self._sinks.append(sink)
        if categories is None:
            self.categories = None
        elif self.categories is not None or not self.enabled:
            combined = frozenset(categories)
            if self.enabled and self.categories is not None:
                combined |= self.categories
            self.categories = combined
        self.enabled = True
        return sink

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)
        if not self._sinks:
            self.enabled = False
            self.categories = None

    def _wants(self, category: str) -> bool:
        cats = self.categories
        return cats is None or category in cats

    # -- instants ------------------------------------------------------
    def emit(self, time_ms: float, category: str, name: str, **fields: Any) -> None:
        if not self.enabled or not self._wants(category):
            return
        event = TraceEvent(time_ms, category, name, fields, self.pid)
        for sink in self._sinks:
            sink.on_event(event)

    # -- spans ---------------------------------------------------------
    def begin(
        self, time_ms: float, category: str, name: str, track: str = "", **fields: Any
    ) -> Optional[Span]:
        """Open a span; returns None when disabled (``end(None, …)`` is safe)."""
        if not self.enabled or not self._wants(category):
            return None
        span = Span(category, name, track, time_ms, fields=fields, pid=self.pid)
        span.depth = self._stacks.open(span)
        return span

    def end(self, span: Optional[Span], time_ms: float, **fields: Any) -> None:
        if span is None or span.end_ms is not None:
            return
        span.end_ms = time_ms
        if fields:
            span.fields.update(fields)
        self._stacks.close(span)
        for sink in self._sinks:
            sink.on_span(span)

    def span(
        self,
        start_ms: float,
        end_ms: float,
        category: str,
        name: str,
        track: str = "",
        **fields: Any,
    ) -> None:
        """Emit an already-complete span (e.g. a message flight, a WAL sync)."""
        if not self.enabled or not self._wants(category):
            return
        span = Span(category, name, track, start_ms, end_ms, fields=fields, pid=self.pid)
        for sink in self._sinks:
            sink.on_span(span)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (diagnostics / leak tests)."""
        return self._stacks.open_spans()


#: A permanently disabled tracer for components constructed without one.
NULL_TRACER = Tracer()


# ----------------------------------------------------------------------
# Process-wide capture: sinks installed here bind to every new simulator.
# ----------------------------------------------------------------------
_pid_counter = itertools.count(1)
_installed_sinks: List[Sink] = []
_installed_categories: Optional[FrozenSet[str]] = None
_bound_tracers: List[Tracer] = []


def install(sinks: Iterable[Sink], categories: Optional[Iterable[str]] = None) -> None:
    """Start a process-wide capture: every Simulator created from now on
    traces into ``sinks``.  One capture at a time (captures own the global
    namespace; nesting them would silently cross-wire digests)."""
    global _installed_categories
    if _installed_sinks:
        raise RuntimeError("an obs capture is already installed")
    _installed_sinks.extend(sinks)
    _installed_categories = frozenset(categories) if categories is not None else None


def uninstall() -> None:
    """Stop the capture and detach every tracer it bound."""
    global _installed_categories
    for tracer in _bound_tracers:
        for sink in list(_installed_sinks):
            tracer.remove_sink(sink)
    _bound_tracers.clear()
    _installed_sinks.clear()
    _installed_categories = None


def capture_active() -> bool:
    return bool(_installed_sinks)


def installed_categories() -> Optional[FrozenSet[str]]:
    """The active capture's category filter (None = everything, or inactive)."""
    return _installed_categories


def next_pid() -> int:
    """Mint a fresh simulator pid (used when replaying forwarded records)."""
    return next(_pid_counter)


def emit_to_capture(record) -> None:
    """Feed one record straight into the installed capture's sinks.

    This is the seam for events that have no simulator tracer behind them —
    the sweep executor's point lifecycle, and records forwarded from worker
    processes.  The installed category filter still applies, so replayed
    streams and synthetic events obey the same rules as live tracers.
    No-op when no capture is installed.
    """
    if not _installed_sinks:
        return
    cats = _installed_categories
    if cats is not None and record.category not in cats:
        return
    if isinstance(record, TraceEvent):
        for sink in _installed_sinks:
            sink.on_event(record)
    else:
        for sink in _installed_sinks:
            sink.on_span(record)


def new_tracer() -> Tracer:
    """Mint the tracer for a new simulator, binding any installed capture."""
    tracer = Tracer(pid=next(_pid_counter))
    if _installed_sinks:
        for sink in _installed_sinks:
            tracer.add_sink(sink, categories=_installed_categories)
        _bound_tracers.append(tracer)
    return tracer


# ----------------------------------------------------------------------
# Post-hoc adapter: a finished transaction as an event stream.
# ----------------------------------------------------------------------
def events_from_transaction(tx) -> List[TraceEvent]:
    """The life of one finished transaction as obs events.

    Works on any object with the :class:`~repro.core.transaction
    .PlanetTransaction` audit surface (``stage_times``,
    ``likelihood_trace``, …) — duck-typed so this module stays
    import-free.  ``repro.trace`` renders these into the human timeline;
    tests diff them against live-captured streams.
    """
    events: List[TraceEvent] = []
    for stage, when in tx.stage_times.items():
        fields: Dict[str, Any] = {"txid": tx.txid}
        name = stage.value
        if name == "guessed" and tx.predicted_at_guess is not None:
            fields["p"] = tx.predicted_at_guess
        elif name == "aborted":
            fields["reason"] = tx.abort_reason.value
        elif name == "committed" and tx.commit_latency_ms() is not None:
            fields["latency_ms"] = tx.commit_latency_ms()
        events.append(TraceEvent(when, "stage", name, fields))
    for when, likelihood in tx.likelihood_trace:
        events.append(
            TraceEvent(when, "tx", "vote", {"txid": tx.txid, "likelihood": likelihood})
        )
    events.sort(key=lambda event: (event.time_ms, event.category, event.name))
    return events
