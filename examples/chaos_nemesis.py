"""Run the stack through a random fault storm and audit the aftermath.

Draws a seeded chaos plan (latency spikes, single-DC partitions, a
coordinator crash), runs a mixed workload through it with recovery and
anti-entropy armed, and then verifies the safety battery — the simulated
equivalent of a Jepsen run.

Run with:  python examples/chaos_nemesis.py [seed]
"""

import sys

from repro import Cluster, ClusterConfig
from repro.core.session import PlanetSession
from repro.faults import chaos_plan

DURATION_MS = 8_000.0


def main(seed: int = 4) -> None:
    cluster = Cluster(
        ClusterConfig(
            seed=seed,
            option_ttl_ms=400.0,
            anti_entropy_interval_ms=500.0,
        )
    )
    cluster.load({"stock": 200})
    plan = chaos_plan(cluster.datacenter_names, DURATION_MS, seed=seed, intensity=2.0)
    plan.apply(cluster)
    print(f"nemesis plan (seed {seed}): {plan.describe()}")
    print()

    sessions = {dc: PlanetSession(cluster, dc) for dc in cluster.datacenter_names}
    rng = cluster.sim.rng.stream("nemesis-load")
    txs = []
    for i in range(150):
        dc = cluster.datacenter_names[i % 5]
        if rng.random() < 0.5:
            tx = sessions[dc].transaction().increment("stock", -1, floor=0.0)
        else:
            tx = sessions[dc].transaction().write(f"item:{rng.randrange(40)}", i)
        tx.with_timeout(2_000.0)
        cluster.sim.schedule(rng.uniform(0.0, DURATION_MS), sessions[dc].submit, tx)
        txs.append(tx)
    cluster.run()
    cluster.settle(3_000.0)

    decided = sum(1 for tx in txs if tx.decision is not None)
    committed = sum(1 for tx in txs if tx.committed)
    print(f"transactions: {len(txs)} submitted, {decided} decided, {committed} committed")

    # Safety battery ----------------------------------------------------
    problems = []
    for node in cluster.storage_nodes.values():
        for key in node.store.keys():
            if node.store.record(key).pending:
                problems.append(f"pending option left at {node.node_id}/{key}")
    states = {
        tuple(sorted(
            (key, node.store.record(key).latest.value)
            for key in node.store.keys()
            if node.store.record(key).committed_version > 0
        ))
        for node in cluster.storage_nodes.values()
    }
    if len(states) != 1:
        problems.append("replicas diverged")
    stock_values = {node.store.get("stock").value for node in cluster.storage_nodes.values()}
    if len(stock_values) != 1 or min(stock_values) < 0:
        problems.append(f"stock inconsistent/negative: {stock_values}")

    if problems:
        for problem in problems:
            print(f"  FAIL  {problem}")
        raise SystemExit(1)
    print("safety battery: replicas converged, no orphans, escrow intact  [OK]")
    repaired = sum(r.ae_repairs for r in cluster.replicas.values())
    recovered = sum(r.recovered_aborts for r in cluster.replicas.values())
    print(f"(anti-entropy shipped {repaired} versions; recovery aborted {recovered} orphans)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
