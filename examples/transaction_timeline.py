"""Inspect a transaction's life: votes, likelihood, guess, commit.

Uses the tracing module to print full timelines for two contrasting
transactions — an uncontended one (smooth likelihood climb, early guess)
and one racing a competitor for the same record (likelihood crash, abort) —
plus the compact one-line latency bars.

Run with:  python examples/transaction_timeline.py
"""

from repro import Cluster, ClusterConfig
from repro.core.session import PlanetSession
from repro.trace import render_latency_bar, render_timeline


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=3))
    session = PlanetSession(cluster, "us_west")
    competitor = PlanetSession(cluster, "singapore", conflicts=session.conflicts)

    smooth = (
        session.transaction()
        .read("profile:alice")
        .write("profile:alice", {"theme": "dark"})
        .with_guess_threshold(0.9)
        .with_timeout(2_000.0)
    )
    contended_a = session.transaction().write("hot:counter", 1).with_guess_threshold(0.9)
    contended_b = competitor.transaction().write("hot:counter", 2).with_guess_threshold(0.9)

    session.submit(smooth)
    session.submit(contended_a)
    competitor.submit(contended_b)
    cluster.run()

    print(render_timeline(smooth))
    print()
    for tx, name in ((contended_a, "us_west writer"), (contended_b, "singapore writer")):
        print(f"--- {name} ---")
        print(render_timeline(tx))
        print()

    print("latency bars (G = guess, D = decision):")
    for tx, name in ((smooth, "smooth"), (contended_a, "contended A"), (contended_b, "contended B")):
        bar = render_latency_bar(tx, width=50)
        if bar is not None:
            print(f"  {name:12s} {bar}  -> {tx.stage.value}")


if __name__ == "__main__":
    main()
