"""Quickstart: one PLANET transaction across five data centers.

Builds the simulated geo-replicated deployment, runs a single transaction
with the full callback surface, and prints the timeline the programming
model exposes: progress (commit likelihood) on every replica vote, the
speculative commit ("guess") the moment the likelihood crosses the
threshold, and the final durable commit one wide-area quorum round trip
later.

Run with:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, PlanetClient


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=7))
    client = PlanetClient(cluster, "us_west")
    sim = cluster.sim

    txn = (
        client.transaction()
        .read("balance:alice")
        .write("balance:alice", 125)
        .write("audit:alice:1", {"change": +25})
        .with_timeout(1_000.0)
        .with_guess_threshold(0.95)
        .on_progress(
            lambda tx, p: print(f"  t={sim.now:7.2f} ms  progress: commit likelihood {p:.3f}")
        )
        .on_guess(
            lambda tx, p: print(
                f"  t={sim.now:7.2f} ms  GUESS: responding to the user now (p={p:.3f})"
            )
        )
        .on_wrong_guess(lambda tx: print(f"  t={sim.now:7.2f} ms  compensation needed!"))
        .on_commit(lambda tx: print(f"  t={sim.now:7.2f} ms  COMMIT: durable at quorum"))
        .on_abort(lambda tx: print(f"  t={sim.now:7.2f} ms  ABORT: {tx.abort_reason.value}"))
    )

    print("Submitting transaction from us_west across 5 data centers...")
    client.submit(txn)
    cluster.run()

    print()
    print(f"final stage      : {txn.stage.value}")
    print(f"time to guess    : {txn.guess_latency_ms():.2f} ms")
    print(f"time to commit   : {txn.commit_latency_ms():.2f} ms")
    print(f"user-perceived speedup: {txn.commit_latency_ms() / txn.guess_latency_ms():.0f}x")
    print()
    print("replica state (all five data centers):")
    for dc_name, node in cluster.storage_nodes.items():
        print(f"  {dc_name:10s} balance:alice = {node.store.get('balance:alice').value}")


if __name__ == "__main__":
    main()
