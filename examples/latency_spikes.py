"""Staying responsive through wide-area latency spikes.

Injects periodic 4x latency spikes on the inter-DC links (the paper's
"unpredictable environment": consolidation interference, congested
geo-links) while an interactive workload runs.  An application that blocks
on the durable commit sees second-scale stalls during spikes; an application
using the guess callback keeps answering users in milliseconds, because the
likelihood crosses the threshold on the *earliest* votes.

Run with:  python examples/latency_spikes.py
"""

from repro.experiments.common import microbench_run
from repro.harness.report import Table
from repro.workload.spikes import periodic_spikes


def main() -> None:
    duration = 30_000.0
    spikes = periodic_spikes(
        first_start_ms=5_000.0,
        period_ms=8_000.0,
        duration_ms=2_500.0,
        count=3,
        multiplier=4.0,
    )
    print("running 30 s with three 2.5 s spikes of 4x latency ...")
    result = microbench_run(
        seed=9,
        n_keys=5_000,
        rate_tps=4.0,
        clients_per_dc=2,
        duration_ms=duration,
        warmup_ms=2_000.0,
        timeout_ms=10_000.0,
        guess_threshold=0.95,
        spikes=spikes,
    )

    windows = [(s.start_ms, s.start_ms + s.duration_ms) for s in spikes]

    def in_spike(tx):
        return any(start <= tx.submitted_at < end for start, end in windows)

    rows = {"calm": [], "spike": []}
    for tx in result.transactions:
        rows["spike" if in_spike(tx) else "calm"].append(tx)

    table = Table(
        "User-visible latency, calm vs spike windows (ms, p50 / p99)",
        ["window", "txns", "blocking commit", "PLANET response (guess)"],
    )
    for name, txs in rows.items():
        commits = sorted(
            tx.commit_latency_ms() for tx in txs
            if tx.committed and tx.commit_latency_ms() is not None
        )
        responses = sorted(
            tx.guess_latency_ms() if tx.guess_latency_ms() is not None else tx.commit_latency_ms()
            for tx in txs
            if tx.guess_latency_ms() is not None or tx.commit_latency_ms() is not None
        )

        def p(samples, q):
            return samples[min(int(q * len(samples)), len(samples) - 1)] if samples else 0.0

        table.add_row(
            name,
            len(txs),
            f"{p(commits, 0.5):7.1f} / {p(commits, 0.99):7.1f}",
            f"{p(responses, 0.5):7.1f} / {p(responses, 0.99):7.1f}",
        )
    table.print()

    print("During spikes the durable commit stretches with the network, but the")
    print("guess callback keeps the user experience in the tens of milliseconds.")


if __name__ == "__main__":
    main()
