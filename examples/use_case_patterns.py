"""The paper's application patterns, each in a few lines.

Demonstrates the four reusable use-case helpers built on the PLANET model:

1. TwoTierResponse — provisional answer at guess, durable confirmation later;
2. SoftDeadline — honest "still working, ~N ms to go" without killing work;
3. AlternateOnLowLikelihood — abandon a doomed transaction for a fallback;
4. RetryPolicy — bounded backoff-retry for conflict aborts.

Run with:  python examples/use_case_patterns.py
"""

from repro import Cluster, ClusterConfig
from repro.core.session import PlanetSession
from repro.usecases import (
    AlternateOnLowLikelihood,
    RetryPolicy,
    SoftDeadline,
    TwoTierResponse,
)


def demo_two_tier(cluster: Cluster, session: PlanetSession) -> None:
    print("1) Two-tier response")
    pattern = TwoTierResponse(
        session,
        respond_provisionally=lambda tx: print(
            f"     t={cluster.sim.now:6.1f} ms  UI: 'Order placed!' (provisional)"
        ),
        confirm=lambda tx: print(
            f"     t={cluster.sim.now:6.1f} ms  e-mail: receipt sent (durable)"
        ),
    )
    tx = session.transaction().write("order:1001", {"item": "novel"})
    pattern.run(tx, guess_threshold=0.95)
    cluster.run()
    print(f"     user waited {pattern.user_response_latency_ms(tx):.1f} ms; "
          f"durable after {tx.commit_latency_ms():.1f} ms\n")


def demo_soft_deadline(cluster: Cluster, session: PlanetSession) -> None:
    print("2) Soft deadline with an honest ETA")
    pattern = SoftDeadline(
        session,
        soft_deadline_ms=60.0,
        on_still_pending=lambda tx, eta: print(
            f"     t={cluster.sim.now:6.1f} ms  UI: 'still working — about "
            f"{eta:.0f} ms to go'"
        ),
    )
    # No guess threshold: nothing answers before the wide-area quorum.
    tx = session.transaction().write("order:1002", {"item": "lamp"})
    pattern.run(tx)
    cluster.run()
    print(f"     committed at t={tx.decided_at:.1f} ms, as predicted\n")


def demo_alternate(cluster: Cluster, session: PlanetSession) -> None:
    print("3) Alternate transaction when the likelihood tanks")
    # Poison the statistics: the 'us' warehouse looks hopeless.
    for _ in range(60):
        session.conflicts.observe_outcome("stock:us:lamp", conflicted=True)
        session.conflicts.observe_outcome("stock:eu:lamp", conflicted=False)

    pattern = AlternateOnLowLikelihood(
        session,
        build_alternate=lambda failed: (
            print(f"     t={cluster.sim.now:6.1f} ms  switching to the EU warehouse"),
            session.transaction().increment("stock:eu:lamp", -1, floor=-10_000),
        )[1],
        likelihood_floor=0.5,
    )
    pattern.run(session.transaction().write("stock:us:lamp", 0))
    cluster.run()
    print(f"     attempts: {len(pattern.attempts)}, final outcome: "
          f"{pattern.final.stage.value}\n")


def demo_retry(cluster: Cluster, session: PlanetSession) -> None:
    print("4) Retry policy for conflict aborts")
    competitor = PlanetSession(cluster, "us_east", conflicts=session.conflicts)
    competitor.submit(competitor.transaction().write("seat:12A", "someone-else"))

    policy = RetryPolicy(
        session,
        build=lambda: session.transaction().write("seat:12A", "me"),
        max_retries=4,
        base_backoff_ms=250.0,
        on_done=lambda tx, ok: print(
            f"     t={cluster.sim.now:6.1f} ms  {'booked!' if ok else 'gave up'} "
            f"after {policy.total_attempts} attempt(s)"
        ),
    )
    cluster.sim.schedule(10.0, policy.run)
    cluster.run()
    print()


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=31))
    session = PlanetSession(cluster, "us_west")
    demo_two_tier(cluster, session)
    demo_soft_deadline(cluster, session)
    demo_alternate(cluster, session)
    demo_retry(cluster, session)


if __name__ == "__main__":
    main()
