"""Coordinator crash and the orphan-recovery protocol, step by step.

A coordinator dies while its transaction's options are in flight.  Without
recovery, the accepted options orphan their records — every later writer
conflicts forever.  With the recovery protocol armed, the replicas run
status rounds among themselves and *complete* the transaction (it had
reached a quorum before the crash), so no work is lost and the records are
immediately reusable.

Run with:  python examples/crash_recovery.py
"""

from repro import Cluster, ClusterConfig
from repro.core.session import PlanetSession


def scenario(option_ttl_ms, label):
    print(f"=== {label} ===")
    cluster = Cluster(ClusterConfig(seed=5, jitter_sigma=0.0, option_ttl_ms=option_ttl_ms))
    session = PlanetSession(cluster, "us_west")

    doomed = session.transaction().write("inventory:widget", 500)
    session.submit(doomed)
    # Crash the coordinator 50 ms in: proposals are in flight, the decision
    # will never be made by the coordinator itself.
    cluster.sim.schedule(50.0, cluster.crash_coordinator, "us_west")
    cluster.run()

    pending = sum(
        1 for node in cluster.storage_nodes.values()
        if node.store.record("inventory:widget").pending
    )
    value = cluster.storage_node("tokyo").store.get("inventory:widget").value
    print(f"  after drain: value={value!r}, replicas with pending options={pending}")

    # Another customer (different DC, healthy coordinator) tries to write.
    survivor = PlanetSession(cluster, "us_east")
    retry = survivor.transaction().write("inventory:widget", 750)
    survivor.submit(retry)
    cluster.run()
    print(f"  survivor's write: {retry.stage.value}"
          + (f" ({retry.abort_reason.value})" if not retry.committed else ""))
    print()


def main() -> None:
    scenario(option_ttl_ms=None, label="no recovery: orphaned options block the record")
    scenario(option_ttl_ms=500.0, label="recovery armed (TTL 500 ms): takeover completes the work")


if __name__ == "__main__":
    main()
