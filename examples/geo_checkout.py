"""Geo-distributed web-shop checkout (the TPC-W-like workload).

Runs the checkout workload — read customer, decrement stock for each cart
item (escrow-guarded), insert the order — from clients in all five regions,
and prints a per-region latency report: how long users wait for the
provisional confirmation (guess) versus the durable commit, from each
coordinator data center.

The per-region quorum-RTT floor explains the commit numbers: Ireland's
fourth-closest region is 265 ms away, so its durable commits are the
slowest — but its *guesses* are just as fast as everyone else's, which is
the point of the programming model.

Run with:  python examples/geo_checkout.py
"""

from repro.cluster import ClusterConfig
from repro.core.session import PlanetConfig
from repro.harness.config import RunConfig, WorkloadConfig
from repro.harness.report import Table
from repro.harness.runner import run_experiment
from repro.workload.tpcw import TpcwSpec, build_checkout_tx


def main() -> None:
    spec = TpcwSpec(
        n_customers=1_000,
        n_items=300,
        item_theta=0.9,
        timeout_ms=2_000.0,
        guess_threshold=0.95,
    )
    config = RunConfig(
        cluster=ClusterConfig(seed=11),
        planet=PlanetConfig(),
        workload=WorkloadConfig(
            tx_factory=lambda session, rng: build_checkout_tx(session, spec, rng),
            arrival="open",
            rate_tps=5.0,
            clients_per_dc=2,
        ),
        duration_ms=20_000.0,
        warmup_ms=2_000.0,
        initial_data=spec.initial_data(),
    )
    result = run_experiment(config)

    table = Table(
        "Checkout latency by coordinator region (ms)",
        ["region", "orders", "guess p50", "commit p50", "commit p99", "quorum RTT floor"],
    )
    topology = result.cluster.topology
    by_dc = {}
    for session in result.sessions:
        for tx in session.finished:
            if tx.submitted_at is not None and tx.submitted_at >= config.warmup_ms:
                by_dc.setdefault(session.dc_name, []).append(tx)
    for dc_name, txs in by_dc.items():
        committed = [tx for tx in txs if tx.committed]
        guesses = sorted(
            tx.guess_latency_ms() for tx in txs if tx.guess_latency_ms() is not None
        )
        commits = sorted(tx.commit_latency_ms() for tx in committed)
        floor = topology.quorum_rtt_ms(topology.datacenter(dc_name), 4)
        table.add_row(
            dc_name,
            len(committed),
            guesses[len(guesses) // 2] if guesses else float("nan"),
            commits[len(commits) // 2] if commits else float("nan"),
            commits[int(len(commits) * 0.99)] if commits else float("nan"),
            floor,
        )
    table.print()

    summary = result.summary()
    print(f"goodput          : {summary['goodput_tps']:.1f} checkouts/s")
    print(f"abort rate       : {summary['abort_rate']:.2%} (escrow keeps hot items commuting)")
    print(f"guessed          : {summary['guessed_fraction']:.1%} of checkouts confirmed early")
    print(f"wrong guesses    : {summary['wrong_guess_rate']:.2%}")


if __name__ == "__main__":
    main()
