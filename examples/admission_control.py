"""Admission control under contention: shedding doomed work raises goodput.

Floods a 16-record hot set with exclusive writes, then compares three
deployments of the *same* workload:

* no admission control — the optimistic engine wastes wide-area round trips
  discovering that most transactions conflict;
* likelihood-based admission — transactions whose predicted commit
  likelihood is below 0.4 are rejected locally, in effect instantly;
* random shedding at the same measured rejection rate — the control that
  shows the prediction (not the load reduction) carries the win.

Run with:  python examples/admission_control.py
"""

from repro.core.admission import AdmissionPolicy
from repro.core.session import PlanetConfig
from repro.experiments.common import microbench_run
from repro.harness.report import Table


def main() -> None:
    shared = dict(
        seed=5,
        n_keys=4_096,
        hot_keys=16,
        hot_fraction=0.8,
        rate_tps=16.0,
        clients_per_dc=2,
        duration_ms=15_000.0,
        warmup_ms=2_000.0,
        timeout_ms=2_000.0,
        guess_threshold=None,
    )
    print("running: no admission control ...")
    plain = microbench_run(planet=PlanetConfig(), **shared)
    print("running: likelihood admission (threshold 0.4) ...")
    likelihood = microbench_run(
        planet=PlanetConfig(
            admission_policy=AdmissionPolicy.LIKELIHOOD, admission_threshold=0.4
        ),
        **shared,
    )
    shed_rate = likelihood.abort_reason_counts().get("admission", 0) / max(
        len(likelihood.transactions), 1
    )
    print(f"running: random shedding at the matched rate ({shed_rate:.0%}) ...")
    random_shed = microbench_run(
        planet=PlanetConfig(
            admission_policy=AdmissionPolicy.RANDOM,
            random_reject_rate=min(shed_rate, 0.95),
        ),
        **shared,
    )
    print()

    table = Table(
        "Goodput under an 80%-hot, 16-record write storm",
        ["policy", "goodput (commits/s)", "abort %", "mean abort cost (ms)"],
    )
    for name, run in (
        ("none", plain),
        ("likelihood >= 0.4", likelihood),
        (f"random {shed_rate:.0%}", random_shed),
    ):
        aborted = run.aborted()
        costs = [
            tx.commit_latency_ms()
            for tx in aborted
            if tx.commit_latency_ms() is not None
        ]
        mean_cost = sum(costs) / len(costs) if costs else 0.0
        table.add_row(name, run.goodput_tps(), 100.0 * run.abort_rate(), mean_cost)
    table.print()

    gain = likelihood.goodput_tps() / plain.goodput_tps()
    print(f"likelihood admission delivers {gain:.1f}x the goodput of no admission,")
    print(
        f"and {likelihood.goodput_tps() / random_shed.goodput_tps():.1f}x that of "
        "blind shedding at the same rate — the prediction is the point."
    )


if __name__ == "__main__":
    main()
