"""Flash ticket sale: hot-record contention, escrow, guesses, compensation.

A concert with limited tickets goes on sale simultaneously in five regions.
Every purchase decrements the same ``tickets`` record — the hottest possible
record — with an escrow floor of zero, so overselling is impossible by
construction.  Buyers see an *instant* provisional confirmation (the guess
callback) and, in the rare case the guess was wrong, a compensating apology.

This is the paper's flagship use case for the programming model: commutative
options keep hot-record throughput high, and the staged callbacks keep the
user experience interactive despite wide-area commit latency.

Run with:  python examples/ticket_sales.py
"""

from random import Random

from repro import Cluster, ClusterConfig, PlanetConfig
from repro.core.conflicts import ConflictTracker
from repro.core.session import PlanetSession

TICKETS = 40
BUYERS = 120


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=42))
    cluster.load({"tickets": TICKETS})

    # One shared conflict tracker: the predictor aggregates deployment-wide
    # statistics (the paper's prediction service), so a hot record heats up
    # for every app server at once.
    conflicts = ConflictTracker()
    sessions = {
        dc: PlanetSession(cluster, dc, config=PlanetConfig(), conflicts=conflicts)
        for dc in cluster.datacenter_names
    }
    rng = Random(0)
    confirmations, apologies, sellouts = [], [], []

    def buy(buyer_id: int, dc: str) -> None:
        session = sessions[dc]
        tx = (
            session.transaction()
            .increment("tickets", -1, floor=0.0)
            .write(f"ticket_order:{buyer_id}", {"buyer": buyer_id, "dc": dc})
            .with_timeout(2_000.0)
            .with_guess_threshold(0.9)
            .on_guess(lambda t, p: confirmations.append((buyer_id, cluster.sim.now, p)))
            .on_wrong_guess(lambda t: apologies.append(buyer_id))
            .on_abort(lambda t: sellouts.append(buyer_id))
        )
        session.submit(tx)

    # All buyers pile in within the first 2 simulated seconds.
    for buyer_id in range(BUYERS):
        dc = cluster.datacenter_names[buyer_id % 5]
        cluster.sim.schedule(rng.uniform(0.0, 2_000.0), buy, buyer_id, dc)

    cluster.run()

    sold = TICKETS - cluster.storage_node("us_west").store.get("tickets").value
    print(f"tickets available : {TICKETS}")
    print(f"buyers            : {BUYERS}")
    print(f"tickets sold      : {sold}")
    print(f"instant confirms  : {len(confirmations)}")
    print(f"apologies (wrong guesses): {len(apologies)}")
    print(f"turned away       : {len(sellouts)}")
    print()

    for buyer_id, when, p in confirmations[:5]:
        print(f"  buyer {buyer_id:3d} confirmed instantly at p={p:.3f}")
    # Over-sale is impossible by escrow:
    for dc, node in cluster.storage_nodes.items():
        remaining = node.store.get("tickets").value
        assert remaining >= 0, "escrow floor violated!"
    print()
    print("escrow invariant holds: no replica ever went below zero tickets")

    committed = sum(s.metrics.counter("committed") for s in sessions.values())
    wrong = sum(s.metrics.counter("wrong_guesses") for s in sessions.values())
    print(f"committed={committed}  wrong_guesses={wrong}")


if __name__ == "__main__":
    main()
